//! The background checkpoint uploader.
//!
//! Checkpoint uploads are asynchronous: a worker taking a checkpoint
//! serializes the snapshot (optionally planning an incremental chunk
//! upload against its previous manifest), hands the resulting objects to
//! this thread as an [`UploadJob`], and resumes processing immediately.
//! The uploader PUTs the objects — absorbing whatever latency, bandwidth
//! cap or transient faults the configured backend injects — persists the
//! checkpoint metadata, and only then acks the now-durable checkpoint to
//! the coordinator. A checkpoint the coordinator knows about is
//! therefore always fully durable, which recovery relies on. Uploads
//! already handed over survive a worker kill: the uploader models a
//! separate service, like the store itself.
//!
//! [`UploadMsg::Flush`] is the recovery quiesce barrier: once every
//! worker is paused (no new jobs), an acked flush proves nothing is in
//! flight, so no discarded-timeline object can appear in the store after
//! the rollback.
//!
//! Under tiered storage this thread also hosts the **compactor**:
//! between upload jobs it runs one seal/vacuum/demote pass every
//! `LiveTiering::maintain_every` of wall time — the live counterpart of
//! the engine's `TierMaintain` events, against the same recovery-line
//! pins (the coordinator refreshes them as checkpoints complete).
//! Running compaction here, not on a worker, keeps it off the data
//! path — the same "background scavenging" placement as the upload
//! itself — and serializes it with PUTs so a seal never races a job's
//! objects into a half-sealed hot tier.

use crate::coordinator::Note;
use checkmate_core::{CheckpointMeta, DurableCheckpoints};
use checkmate_storage::{SharedStore, TieredBackend};
use crossbeam::channel::{Receiver, RecvTimeoutError, Sender};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Uploader-side health counters, read by the coordinator into the
/// final [`crate::LiveReport`].
#[derive(Default)]
pub(crate) struct UploaderStats {
    /// Maintenance-timer wakeups that found nothing to do (no job, no-op
    /// compaction pass). The idle backoff keeps this bounded.
    pub idle_wakeups: AtomicU64,
    /// Whole-snapshot checkpoints dropped because a PUT exhausted the
    /// store's bounded retry budget (brownout degradation).
    pub ckpts_deferred: AtomicU64,
}

/// A serialized snapshot handed to the background uploader: the worker
/// resumes processing the moment this is enqueued.
pub(crate) struct UploadJob {
    pub epoch: u32,
    pub meta: CheckpointMeta,
    pub objects: Vec<(String, Vec<u8>)>,
}

/// Messages to the background uploader.
pub(crate) enum UploadMsg {
    Job(UploadJob),
    /// Drain barrier: acked once every job enqueued before it is
    /// durable.
    Flush(Sender<()>),
}

/// The uploader thread body: PUTs snapshot objects, persists the meta,
/// then acks the durable checkpoint to the coordinator; with `tier`
/// set, runs a compaction pass whenever `maintain_every` elapses with
/// no job in the queue. Exits when every job sender has hung up.
pub(crate) fn uploader_main(
    store: SharedStore,
    jobs: Receiver<UploadMsg>,
    note: Sender<Note>,
    start: Instant,
    tier: Option<(Arc<TieredBackend>, Duration)>,
    stats: Arc<UploaderStats>,
) {
    let durable = DurableCheckpoints::new(store);
    let mut next_maintain = tier.as_ref().map(|(_, every)| Instant::now() + *every);
    // Consecutive no-op maintenance passes; each doubles the timer (up
    // to 64×) so an idle uploader parks instead of spinning wakeups at
    // the raw `maintain_every` cadence. Any job or productive pass
    // resets the cadence.
    let mut idle_streak: u32 = 0;
    loop {
        let msg = if let (Some((backend, every)), Some(at)) = (&tier, next_maintain) {
            match jobs.recv_timeout(at.saturating_duration_since(Instant::now())) {
                Ok(msg) => {
                    idle_streak = 0;
                    next_maintain = Some(Instant::now() + *every);
                    msg
                }
                Err(RecvTimeoutError::Timeout) => {
                    let t0 = Instant::now();
                    let rep = backend.maintain();
                    if rep.is_noop() {
                        stats.idle_wakeups.fetch_add(1, Ordering::Relaxed);
                        idle_streak = (idle_streak + 1).min(6);
                    } else {
                        backend.note_io_ns(t0.elapsed().as_nanos() as u64);
                        idle_streak = 0;
                    }
                    next_maintain = Some(Instant::now() + *every * (1 << idle_streak));
                    continue;
                }
                Err(RecvTimeoutError::Disconnected) => break,
            }
        } else {
            match jobs.recv() {
                Ok(msg) => msg,
                Err(_) => break,
            }
        };
        match msg {
            UploadMsg::Job(UploadJob {
                epoch,
                mut meta,
                objects,
            }) => {
                // Incremental snapshots must land atomically: later
                // manifests reference this job's chunks, so a dropped
                // chunk would poison every descendant checkpoint. Use
                // the unbounded (wedging) retry path for those. Whole
                // snapshots are self-contained — bounded retries, and on
                // exhaustion the checkpoint is *deferred*: never acked,
                // never durable, skipped by recovery lines.
                let deferrable = meta.manifest.is_none();
                let mut dropped = false;
                for (key, bytes) in objects {
                    if dropped {
                        break;
                    }
                    if deferrable {
                        if durable.store().try_put(key, bytes).is_err() {
                            dropped = true;
                        }
                    } else {
                        durable.store().put(key, bytes);
                    }
                }
                if dropped {
                    stats.ckpts_deferred.fetch_add(1, Ordering::Relaxed);
                    continue;
                }
                meta.durable_at = start.elapsed().as_nanos() as u64;
                durable.persist_meta(&meta);
                let _ = note.send(Note::Meta(epoch, meta));
            }
            UploadMsg::Flush(ack) => {
                let _ = ack.send(());
            }
        }
    }
}
