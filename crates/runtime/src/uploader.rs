//! The background checkpoint uploader.
//!
//! Checkpoint uploads are asynchronous: a worker taking a checkpoint
//! serializes the snapshot (optionally planning an incremental chunk
//! upload against its previous manifest), hands the resulting objects to
//! this thread as an [`UploadJob`], and resumes processing immediately.
//! The uploader PUTs the objects — absorbing whatever latency, bandwidth
//! cap or transient faults the configured backend injects — persists the
//! checkpoint metadata, and only then acks the now-durable checkpoint to
//! the coordinator. A checkpoint the coordinator knows about is
//! therefore always fully durable, which recovery relies on. Uploads
//! already handed over survive a worker kill: the uploader models a
//! separate service, like the store itself.
//!
//! [`UploadMsg::Flush`] is the recovery quiesce barrier: once every
//! worker is paused (no new jobs), an acked flush proves nothing is in
//! flight, so no discarded-timeline object can appear in the store after
//! the rollback.

use crate::coordinator::Note;
use checkmate_core::{CheckpointMeta, DurableCheckpoints};
use checkmate_storage::SharedStore;
use crossbeam::channel::{Receiver, Sender};
use std::time::Instant;

/// A serialized snapshot handed to the background uploader: the worker
/// resumes processing the moment this is enqueued.
pub(crate) struct UploadJob {
    pub epoch: u32,
    pub meta: CheckpointMeta,
    pub objects: Vec<(String, Vec<u8>)>,
}

/// Messages to the background uploader.
pub(crate) enum UploadMsg {
    Job(UploadJob),
    /// Drain barrier: acked once every job enqueued before it is
    /// durable.
    Flush(Sender<()>),
}

/// The uploader thread body: PUTs snapshot objects, persists the meta,
/// then acks the durable checkpoint to the coordinator. Exits when every
/// job sender has hung up.
pub(crate) fn uploader_main(
    store: SharedStore,
    jobs: Receiver<UploadMsg>,
    note: Sender<Note>,
    start: Instant,
) {
    let durable = DurableCheckpoints::new(store);
    while let Ok(msg) = jobs.recv() {
        match msg {
            UploadMsg::Job(UploadJob {
                epoch,
                mut meta,
                objects,
            }) => {
                for (key, bytes) in objects {
                    durable.store().put(key, bytes);
                }
                meta.durable_at = start.elapsed().as_nanos() as u64;
                durable.persist_meta(&meta);
                let _ = note.send(Note::Meta(epoch, meta));
            }
            UploadMsg::Flush(ack) => {
                let _ = ack.send(());
            }
        }
    }
}
