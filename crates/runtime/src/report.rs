//! Live-run results.
//!
//! [`LiveReport`] carries the exactly-once evidence (commutative sink
//! digest + record count), checkpoint/recovery bookkeeping, latency and
//! throughput, and the data-plane health counters the bounded-inbox
//! design is judged by: the deepest any inbox ever got and the deepest
//! any sender's backpressure queue ever got. A slow consumer must show
//! up as a *bounded* `max_inbox_depth` and throttled upstream progress,
//! never as unbounded queue growth.

use checkmate_dataflow::ops::Digest;
use checkmate_storage::{StoreStats, TieredStats};
use std::time::Duration;

/// Result of a live run.
#[derive(Debug, Clone)]
pub struct LiveReport {
    pub sink_digest: Digest,
    pub sink_records: u64,
    pub checkpoints: u64,
    pub recovered: bool,
    pub p50_latency: Duration,
    pub elapsed: Duration,
    /// Total events processed across all workers: source reads plus
    /// operator deliveries (the unit of the throughput figure).
    pub events: u64,
    /// `events / elapsed`, events per second.
    pub throughput: f64,
    /// High-water mark over every worker inbox (messages). Bounded-inbox
    /// runs keep this near `LiveConfig::inbox_capacity` plus the forced
    /// traffic (control, replay, self-sends, feedback) even under a
    /// deliberately slow consumer.
    pub max_inbox_depth: usize,
    /// High-water mark over every sender's parked-output queue: wires
    /// that could not be pushed to a full inbox and are throttling their
    /// producer.
    pub max_out_pending: usize,
    /// Delivery-order determinants appended to the shared logs
    /// (UNC/CIC protocols only; 0 under COOR/None).
    pub determinants: u64,
    /// Records re-delivered from the durable channel logs during
    /// recovery.
    pub replayed: u64,
    /// Protocol-log appends staged in worker-local arenas instead of
    /// taking a shared-log mutex (`LiveConfig::buffered_logs`): channel
    /// payloads, determinants and steal claims. 0 on the locked-oracle
    /// path.
    pub staged_appends: u64,
    /// Bulk publications of staged runs to the shared logs (one count
    /// per non-empty stage drained at a flush boundary). The contention
    /// win is the ratio `staged_appends / log_flushes` — appends that
    /// shared one lock acquisition instead of paying one each.
    pub log_flushes: u64,
    /// Foreign-partition claims under work-stealing dispatch
    /// (`LiveConfig::steal_sources`): a drained worker ingested a
    /// starved peer's backlog.
    pub steals: u64,
    /// Steal attempts that found no admissible victim: every foreign
    /// backlog was under the handoff threshold, or the victim's cursor
    /// was raced away mid-claim.
    pub steal_denied: u64,
    /// Completed recovery episodes. The legacy single-kill path reports
    /// 1; a failure storm with overlapping kills may fold several kills
    /// into one episode (a kill landing mid-recovery restarts the line
    /// computation instead of opening a new episode).
    pub recoveries: u64,
    /// Checkpoints the uploader dropped because the store's bounded
    /// retry budget was exhausted mid-brownout: the checkpoint is never
    /// acked durable and recovery lines skip past it (graceful
    /// degradation instead of a stalled upload thread).
    pub ckpts_deferred: u64,
    /// Times the uploader's maintenance timer fired with no work to do
    /// (no upload job, no-op compaction pass). Bounded by the idle
    /// backoff — a run that parks for seconds must not spin thousands of
    /// wakeups.
    pub uploader_idle_wakeups: u64,
    /// Durable-store operation counters: puts/gets, retries and backoff
    /// time absorbed by transient faults, deferred puts.
    pub store: StoreStats,
    /// Tiered-store accounting (residency per tier, compaction
    /// counters) when the run used [`crate::LiveTiering`]; `None` for
    /// flat stores.
    pub tier: Option<TieredStats>,
}

impl LiveReport {
    /// One-line human summary (bench/CI output).
    pub fn summary(&self) -> String {
        let tier = match &self.tier {
            Some(t) => format!(
                ", tiers h/w/c {}/{}/{} obj ({} seals, {} demotions)",
                t.hot.objects, t.warm.objects, t.cold.objects, t.seals, t.demotions
            ),
            None => String::new(),
        };
        format!(
            "{} sink records (digest {:016x}/{}), {} ckpts ({} deferred), \
             recoveries={}, p50 {:?}, {:.0} ev/s over {:?}, inbox≤{}, \
             pending≤{}, dets={}, replayed={}, staged={}/{} flushes, \
             steals={}(-{}), store retries {}+{}{}",
            self.sink_records,
            self.sink_digest.acc,
            self.sink_digest.count,
            self.checkpoints,
            self.ckpts_deferred,
            self.recoveries,
            self.p50_latency,
            self.throughput,
            self.elapsed,
            self.max_inbox_depth,
            self.max_out_pending,
            self.determinants,
            self.replayed,
            self.staged_appends,
            self.log_flushes,
            self.steals,
            self.steal_denied,
            self.store.put_retries,
            self.store.get_retries,
            tier,
        )
    }
}
