//! The wire protocol between workers.
//!
//! Everything that crosses a worker boundary is a [`Wire`]: single data
//! records, coalesced [`Wire::DataBatch`] runs, and alignment markers.
//! Batches are the common case — senders stage consecutive same-channel
//! sends in a [`PendingBatch`] and flush them as one message, with two
//! hard invariants enforced at the flush sites in `worker.rs`:
//!
//! 1. **Flush before any marker leaves.** Markers rely on per-channel
//!    FIFO with respect to data; a marker must never overtake records
//!    still staged in the sender.
//! 2. **Flush before every checkpoint capture.** A snapshot's sent
//!    watermarks must already be covered by the durable channel logs
//!    when its metadata becomes restorable, or a post-failure replay
//!    would come up short.
//!
//! These flush sites double as the **staged-append publication points**
//! (`LiveConfig::buffered_logs`): determinants and steal claims publish
//! from their worker-local arenas at every flush, before the staged
//! wires escape; channel payloads publish at invariant 2's
//! checkpoint-capture flush, which is exactly when the durable-coverage
//! requirement bites (see the `worker.rs` module docs).
//!
//! Every wire carries the sender's epoch; receivers drop wires from
//! before the latest recovery.

use checkmate_core::CicPiggyback;
use checkmate_dataflow::graph::ChannelIdx;
use checkmate_dataflow::Record;

/// A message on the wire between workers.
pub(crate) enum Wire {
    Data {
        epoch: u32,
        channel: ChannelIdx,
        seq: u64,
        record: Record,
        piggyback: Option<CicPiggyback>,
        replayed: bool,
    },
    /// A run of consecutive records on one channel (`seq = start_seq + i`),
    /// sent as one message. Senders coalesce same-channel sends between
    /// flush points (capped at `LiveConfig::batch_max` per batch).
    DataBatch {
        epoch: u32,
        channel: ChannelIdx,
        start_seq: u64,
        items: Vec<(Record, Option<CicPiggyback>)>,
        replayed: bool,
    },
    Marker {
        epoch: u32,
        channel: ChannelIdx,
        round: u64,
    },
}

impl Wire {
    pub(crate) fn epoch(&self) -> u32 {
        match self {
            Wire::Data { epoch, .. }
            | Wire::DataBatch { epoch, .. }
            | Wire::Marker { epoch, .. } => *epoch,
        }
    }

    pub(crate) fn channel(&self) -> ChannelIdx {
        match self {
            Wire::Data { channel, .. }
            | Wire::DataBatch { channel, .. }
            | Wire::Marker { channel, .. } => *channel,
        }
    }
}

/// Sender-side staging for one `Wire::DataBatch` in flight.
pub(crate) struct PendingBatch {
    pub dest: usize,
    pub channel: ChannelIdx,
    pub epoch: u32,
    pub start_seq: u64,
    pub items: Vec<(Record, Option<CicPiggyback>)>,
}

impl PendingBatch {
    /// Convert the staged run into its wire form (single records travel
    /// as `Wire::Data`, runs as `Wire::DataBatch`).
    pub(crate) fn into_wire(self) -> Wire {
        if self.items.len() == 1 {
            let (record, piggyback) = self.items.into_iter().next().expect("len 1");
            Wire::Data {
                epoch: self.epoch,
                channel: self.channel,
                seq: self.start_seq,
                record,
                piggyback,
                replayed: false,
            }
        } else {
            Wire::DataBatch {
                epoch: self.epoch,
                channel: self.channel,
                start_seq: self.start_seq,
                items: self.items,
                replayed: false,
            }
        }
    }
}
