//! The worker thread: one OS thread hosting one instance of every
//! operator, driving the protocol state machines over real wires.
//!
//! Each loop iteration: drain control, retry backpressured sends,
//! consume a bounded batch of wires (stash-unblocked backlog first),
//! then — unless backpressured — poll a burst of source records merged
//! across streams in schedule order (rotation breaks ties), fire local
//! checkpoint timers (UNC/CIC), and flush every staged send. The
//! outbound buffer is always empty at loop top.
//!
//! **Backpressure.** Data wires go out with `Inbox::try_push`; a bounce
//! parks the wire in this worker's per-destination `out_pending` queue.
//! While anything is parked the worker admits no new source input and
//! retries the parked sends each iteration — so a full downstream inbox
//! transitively throttles the sources. It keeps draining its own inbox
//! (stalling consumption too would deadlock two mutually-full workers);
//! new sends queue behind the parked backlog, preserving per-channel
//! FIFO. Self-sends and feedback-cycle wires bypass the bound (see
//! `inbox.rs` for the deadlock argument).
//!
//! **Determinant logging.** Under message-logging protocols (UNC/CIC)
//! every fresh delivery appends `(channel, seq)` to the instance's
//! shared [`checkmate_wal::DeterminantLog`] at its absolute delivery
//! position — the receiver-side order log that makes replay reproduce
//! cross-channel interleaving. After a restore, the instance replays
//! against the logged suffix: a wire whose `(channel, seq)` is not the
//! next determinant parks in `det_parked` until its turn; once the
//! suffix drains, parked leftovers (fresh post-crash traffic) release in
//! channel/sequence order. Order-sensitive operators (the cyclic
//! reachability join with deletions) run live correctly because of this.
//!
//! **Staged appends.** With `buffered_logs` (the default) no shared-log
//! mutex is taken per append: channel payloads, determinants and steal
//! claims accumulate in worker-local [`checkmate_wal::RunStage`] arenas
//! and publish in bulk — determinants and claims at every `flush_sends`
//! *before* the staged wires escape (causal-logging order), channel
//! payloads only at checkpoint boundaries (replay never reads past a
//! checkpointed sent watermark; entries lost with a crash are
//! regenerated deterministically and deduplicated on re-publication).
//! `buffered_logs = false` keeps the historical one-lock-per-append
//! path as a correctness oracle.
//!
//! **Work stealing.** With `steal_sources`, source offsets come from
//! shared per-partition claim cursors instead of the private checkpointed
//! cursor: a worker claims contiguous runs of its own partitions by CAS,
//! steals a starved peer's partition when its own have nothing claimable,
//! and journals every claim in the instance's shared
//! [`checkmate_wal::ClaimLog`] before the claimed records' wires leave.
//! Checkpoints store the journal position; after a restore the instance
//! replays the journal suffix (re-polling exactly those offsets, in
//! order) while the coordinator rewinds the shared cursors to the
//! journaled frontier — the explicit cursor handoff that keeps stolen
//! partitions exactly-once (see `dispatch.rs`).

use crate::config::LiveConfig;
use crate::coordinator::{Ctrl, Note, WorkerEnd};
use crate::dispatch::SourceDispatcher;
use crate::inbox::Inbox;
use crate::uploader::{UploadJob, UploadMsg};
use crate::wire::{PendingBatch, Wire};
use crate::Shared;
use checkmate_core::{
    snapshot, ChannelBook, CheckpointId, CheckpointKind, CheckpointMeta, CicPiggyback, CicState,
    CoorAligner, DurableCheckpoints, MarkerAction, ProtocolKind, SnapshotManifest,
};
use checkmate_dataflow::graph::{ChannelIdx, EdgeKind, InstanceIdx};
use checkmate_dataflow::ops::Digest;
use checkmate_dataflow::{
    shuffle_target, Codec, Dec, Enc, OpCtx, OpRole, Operator, PortId, Record,
};
use checkmate_wal::{Claim, EventStream, LogEntry, RunStage, Schedule, SourceCursor, SourceLog};
use crossbeam::channel::{Receiver, Sender};
use std::collections::{BTreeMap, BTreeSet, VecDeque};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// One operator instance living on a worker thread.
pub(crate) struct LiveInstance {
    pub idx: InstanceIdx,
    pub op: Box<dyn Operator>,
    pub book: ChannelBook,
    pub aligner: Option<CoorAligner>,
    pub cic: Option<CicState>,
    pub ckpt_index: u64,
    pub cursor: Option<SourceCursor>,
    pub stream: Option<u32>,
    /// Manifest of the previous checkpoint (incremental mode): the
    /// dedup baseline for the next snapshot plan. Reset from the
    /// restored meta at recovery.
    pub last_manifest: Option<SnapshotManifest>,
    /// Logged delivery order still to be reproduced after a restore
    /// (message-logging protocols). Empty outside recovery replay.
    pub det_replay: VecDeque<(ChannelIdx, u64)>,
    /// Wires that arrived ahead of their determinant turn, parked once
    /// (keyed by `(channel, seq)`) instead of rescanned.
    pub det_parked: BTreeMap<(ChannelIdx, u64), (Record, Option<CicPiggyback>)>,
    /// Position in this instance's shared claim journal (steal mode):
    /// how many claimed source-offset runs it has ingested. Checkpointed
    /// with the cursor; recovery replays the journal suffix past it.
    pub claim_pos: u64,
    /// Journaled claims still to be re-polled after a restore (steal
    /// mode). Empty outside recovery replay.
    pub claim_replay: VecDeque<Claim>,
}

impl LiveInstance {
    pub(crate) fn snapshot_bytes(&self) -> Vec<u8> {
        let mut enc = Enc::with_capacity(self.op.state_size() + 64);
        enc.bytes(&self.op.snapshot());
        self.book.encode(&mut enc);
        match &self.cic {
            Some(c) => {
                enc.bool(true);
                c.encode(&mut enc);
            }
            None => {
                enc.bool(false);
            }
        }
        match &self.cursor {
            Some(c) => {
                enc.bool(true);
                enc.u64(c.next_offset);
                enc.u64(self.claim_pos);
            }
            None => {
                enc.bool(false);
            }
        }
        enc.finish()
    }

    pub(crate) fn restore_from(&mut self, bytes: &[u8]) {
        let mut dec = Dec::new(bytes);
        let op_bytes = dec.bytes().expect("op bytes");
        self.op.restore(op_bytes).expect("op restore");
        self.book = ChannelBook::decode(&mut dec).expect("book");
        if dec.bool().expect("cic flag") {
            self.cic = Some(CicState::decode(&mut dec).expect("cic"));
        }
        if dec.bool().expect("cursor flag") {
            self.cursor = Some(SourceCursor {
                next_offset: dec.u64().expect("cursor"),
            });
            self.claim_pos = dec.u64().expect("claim pos");
        }
    }
}

#[allow(clippy::too_many_arguments, clippy::needless_range_loop)]
pub(crate) fn worker_main(
    w: u32,
    shared: Arc<Shared>,
    cfg: LiveConfig,
    streams: Vec<Arc<dyn EventStream>>,
    inboxes: Arc<Vec<Inbox>>,
    crx: Receiver<Ctrl>,
    note: Sender<Note>,
    up_tx: Sender<UploadMsg>,
    start: Instant,
    quiet: Arc<AtomicU64>,
    hb: Arc<Vec<AtomicU64>>,
) {
    let pg = &shared.pg;
    let logs: Vec<SourceLog<Arc<dyn EventStream>>> = streams
        .iter()
        .enumerate()
        .map(|(i, s)| {
            SourceLog::new(
                Arc::clone(s),
                Schedule::new(cfg.stream_rate(i)).with_limit(cfg.records_per_partition),
            )
        })
        .collect();

    let build_instances = |protocol: ProtocolKind| -> Vec<LiveInstance> {
        pg.logical()
            .ops()
            .iter()
            .map(|op| {
                let idx = InstanceIdx(op.id.0 * cfg.parallelism + w);
                let is_source = matches!(op.role, OpRole::Source { .. });
                LiveInstance {
                    idx,
                    op: (op.factory)(w),
                    book: ChannelBook::new(),
                    aligner: (protocol == ProtocolKind::Coordinated && !is_source)
                        .then(|| CoorAligner::new(pg.in_channels_of(idx).to_vec())),
                    cic: match protocol {
                        ProtocolKind::CommunicationInduced => {
                            Some(CicState::hmnr(idx.0 as usize, pg.n_instances()))
                        }
                        ProtocolKind::CommunicationInducedBcs => Some(CicState::bcs()),
                        _ => None,
                    },
                    ckpt_index: 0,
                    cursor: is_source.then(SourceCursor::default),
                    stream: match op.role {
                        OpRole::Source { stream } => Some(stream),
                        _ => None,
                    },
                    last_manifest: None,
                    det_replay: VecDeque::new(),
                    det_parked: BTreeMap::new(),
                    claim_pos: 0,
                    claim_replay: VecDeque::new(),
                }
            })
            .collect()
    };

    let mut instances = build_instances(cfg.protocol);
    let source_slots: Vec<usize> = instances
        .iter()
        .enumerate()
        .filter(|(_, inst)| inst.stream.is_some())
        .map(|(i, _)| i)
        .collect();
    let mut dispatcher = SourceDispatcher::new(source_slots.clone());
    let n_parts = cfg.parallelism as usize;
    // Sender-local staging arenas (buffered mode): appends accumulate
    // lock-free here and publish to the shared logs in bulk — see the
    // module docs for the publication-order argument. Cleared on
    // kill/restore with the rest of the volatile state.
    let mut chan_stage: RunStage<LogEntry> = RunStage::new(shared.logs.len());
    let mut det_stage: RunStage<(ChannelIdx, u64)> = RunStage::new(shared.dets.len());
    let mut claim_stage: RunStage<Claim> = RunStage::new(shared.claims.len());
    let mut staged_appends = 0u64;
    let mut log_flushes = 0u64;
    let mut steals = 0u64;
    let mut steal_denied = 0u64;
    let mut epoch: u32 = 0;
    let mut dead = false;
    let mut paused = false;
    let mut stopped = false;
    let mut blocked: BTreeSet<ChannelIdx> = BTreeSet::new();
    let mut stash: BTreeMap<ChannelIdx, VecDeque<Wire>> = BTreeMap::new();
    let mut digest_total = Digest::default();
    let mut sink_records = 0u64;
    let mut events = 0u64;
    let mut determinants = 0u64;
    let mut replayed = 0u64;
    let mut latencies: Vec<Duration> = Vec::new();
    let mut next_local_ckpt = start.elapsed() + cfg.checkpoint_interval;
    let quiet_bit = 1u64 << w;

    let now_ns = |start: &Instant| start.elapsed().as_nanos() as u64;

    // Outbound sends staged between flush points: consecutive sends on a
    // channel coalesce into one wire, and the channel-log appends of a
    // batch happen under a single lock acquisition.
    let mut out_buf: Vec<PendingBatch> = Vec::new();
    // Wires bounced by a full destination inbox, per destination, in
    // send order. Non-empty ⇒ this worker is backpressured.
    let mut out_pending: Vec<VecDeque<(Wire, bool)>> =
        (0..cfg.parallelism).map(|_| VecDeque::new()).collect();
    let mut out_pending_total: usize = 0;
    let mut max_out_pending: usize = 0;
    // Carry-over buffer for inbox drains (reused allocation): wires
    // popped from the inbox but not yet handled. Survives across loop
    // iterations so an exhausted budget never drops popped wires.
    let mut inbox_scratch: VecDeque<Wire> = VecDeque::new();

    // Hand a wire towards `dest`: behind any parked backlog for that
    // destination (per-channel FIFO must survive backpressure), else
    // pushed — forced past the bound for self-sends and feedback wires.
    macro_rules! push_wire {
        ($dest:expr, $wire:expr, $force:expr) => {{
            let dest: usize = $dest;
            let wire = $wire;
            let force: bool = $force;
            if !out_pending[dest].is_empty() {
                out_pending[dest].push_back((wire, force));
                out_pending_total += 1;
                max_out_pending = max_out_pending.max(out_pending_total);
            } else if force {
                inboxes[dest].force_push(wire);
            } else if let Err(wire) = inboxes[dest].try_push(wire) {
                out_pending[dest].push_back((wire, false));
                out_pending_total += 1;
                max_out_pending = max_out_pending.max(out_pending_total);
            }
        }};
    }

    // Publish staged determinants and steal claims. Must run before any
    // staged wire escapes: a message's content depends on its sender's
    // delivery and claim order so far, and the receiver may checkpoint
    // state built on it the moment it is delivered — the order logs make
    // that state reproducible only if they cover the send.
    macro_rules! publish_order_stages {
        () => {{
            if !det_stage.is_empty() {
                det_stage.publish_into(|inst, start, items| {
                    determinants += shared.dets[inst as usize].lock().append_run(start, items);
                });
                log_flushes += 1;
            }
            if !claim_stage.is_empty() {
                claim_stage.publish_into(|inst, start, items| {
                    shared.claims[inst as usize].lock().append_run(start, items);
                });
                log_flushes += 1;
            }
        }};
    }

    // Publish staged channel payloads. Only needed at checkpoint
    // boundaries: replay reads a channel log no further than the
    // sender's checkpointed sent watermark, so entries staged since the
    // last checkpoint are never requested — if they die with a crash,
    // the rolled-back sender regenerates them (same seqs, same records)
    // and re-publication deduplicates.
    macro_rules! publish_channel_stage {
        () => {{
            if !chan_stage.is_empty() {
                chan_stage.publish_into(|ch, _start, items| {
                    shared.logs[ch as usize]
                        .lock()
                        .append_entries(items.drain(..));
                });
                log_flushes += 1;
            }
        }};
    }

    macro_rules! flush_sends {
        () => {{
            if cfg.buffered_logs {
                publish_order_stages!();
            }
            for batch in out_buf.drain(..) {
                if cfg.protocol.logs_messages() {
                    if cfg.buffered_logs {
                        for (i, (rec, _)) in batch.items.iter().enumerate() {
                            let seq = batch.start_seq + i as u64;
                            let record = rec.clone();
                            let bytes = record.encoded_len();
                            chan_stage.stage(batch.channel.0, seq, LogEntry { seq, record, bytes });
                        }
                        staged_appends += batch.items.len() as u64;
                    } else {
                        let mut log = shared.logs[batch.channel.0 as usize].lock();
                        for (i, (rec, _)) in batch.items.iter().enumerate() {
                            log.append(batch.start_seq + i as u64, rec.clone());
                        }
                    }
                }
                let dest = batch.dest;
                let force =
                    dest == w as usize || pg.channel(batch.channel).kind == EdgeKind::Feedback;
                push_wire!(dest, batch.into_wire(), force);
            }
        }};
    }

    // Sending a record out of an instance, routing per edge kind.
    // Defined as a macro to borrow locals freely.
    macro_rules! route {
        ($inst_i:expr, $edge_i:expr, $rec:expr) => {{
            let inst_idx = instances[$inst_i].idx;
            let oe = &pg.out_edges_of(inst_idx)[$edge_i];
            let targets: Vec<u32> = match oe.kind {
                EdgeKind::Forward => vec![w],
                EdgeKind::Broadcast => (0..cfg.parallelism).collect(),
                EdgeKind::Shuffle | EdgeKind::Feedback => {
                    vec![shuffle_target($rec.key, cfg.parallelism)]
                }
            };
            for j in targets {
                let ch = oe.targets[j as usize].expect("connected");
                let seq = instances[$inst_i].book.next_send(ch);
                let dest = pg.channel(ch).to.0 as usize;
                let pb = instances[$inst_i].cic.as_mut().map(|c| c.on_send(dest));
                let dest_worker = (pg.channel(ch).to.0 % cfg.parallelism) as usize;
                // Coalesce with the newest staged batch when this send
                // extends its channel run; never reach further back, so
                // the per-destination send order stays the route order.
                match out_buf.last_mut() {
                    Some(b)
                        if b.dest == dest_worker
                            && b.channel == ch
                            && b.epoch == epoch
                            && b.start_seq + b.items.len() as u64 == seq
                            && b.items.len() < cfg.batch_max =>
                    {
                        b.items.push(($rec.clone(), pb));
                    }
                    _ => out_buf.push(PendingBatch {
                        dest: dest_worker,
                        channel: ch,
                        epoch,
                        start_seq: seq,
                        items: vec![($rec.clone(), pb)],
                    }),
                }
            }
        }};
    }

    macro_rules! run_and_route {
        ($inst_i:expr, $port:expr, $rec:expr) => {{
            let mut ctx = OpCtx::new(now_ns(&start));
            instances[$inst_i].op.on_record($port, $rec, &mut ctx);
            let (outputs, _timers) = ctx.take();
            for (edge_i, out) in outputs {
                route!($inst_i, edge_i, out);
            }
        }};
    }

    // Serialize the snapshot, plan what to upload (whole object, or only
    // the chunks that changed since the previous manifest), and hand the
    // objects to the background uploader — the worker resumes
    // immediately; the durable-checkpoint ack reaches the coordinator
    // from the uploader once the PUTs complete.
    //
    // Staged sends flush first — and the staged channel payloads publish
    // — so the snapshot's sent watermarks are covered by the shared
    // channel logs by the time the meta becomes restorable, or a
    // post-kill replay would come up short.
    macro_rules! take_checkpoint {
        ($inst_i:expr, $kind:expr) => {{
            flush_sends!();
            if cfg.buffered_logs {
                publish_channel_stage!();
            }
            instances[$inst_i].ckpt_index += 1;
            let index = instances[$inst_i].ckpt_index;
            let idx = instances[$inst_i].idx;
            let state = instances[$inst_i].snapshot_bytes();
            let state_len = state.len();
            let (recv_wm, sent_wm) = instances[$inst_i].book.watermarks();
            let (state_key, manifest, objects) = match &cfg.incremental {
                Some(policy) => {
                    let plan = snapshot::plan_snapshot(
                        idx,
                        index,
                        &state,
                        instances[$inst_i].last_manifest.as_ref(),
                        policy,
                    );
                    instances[$inst_i].last_manifest = Some(plan.manifest.clone());
                    (String::new(), Some(plan.manifest), plan.objects)
                }
                None => {
                    let key = snapshot::state_key(idx, index);
                    (key.clone(), None, vec![(key, state)])
                }
            };
            let meta = CheckpointMeta {
                id: CheckpointId::new(idx, index),
                kind: $kind,
                taken_at: now_ns(&start),
                durable_at: 0,
                recv_wm,
                sent_wm,
                source_offset: instances[$inst_i].cursor.map(|c| c.next_offset),
                state_key,
                state_bytes: state_len as u64,
                manifest,
            };
            if let Some(cic) = instances[$inst_i].cic.as_mut() {
                cic.on_checkpoint();
            }
            let _ = up_tx.send(UploadMsg::Job(UploadJob {
                epoch,
                meta,
                objects,
            }));
        }};
    }

    // Markers must never overtake staged data on their channel (the
    // alignment protocol relies on per-channel FIFO), so flush first.
    macro_rules! forward_markers {
        ($inst_i:expr, $round:expr) => {{
            flush_sends!();
            let inst_idx = instances[$inst_i].idx;
            let chans: Vec<ChannelIdx> = pg
                .out_edges_of(inst_idx)
                .iter()
                .flat_map(|oe| oe.targets.iter().flatten().copied())
                .collect();
            for ch in chans {
                let dest_worker = (pg.channel(ch).to.0 % cfg.parallelism) as usize;
                push_wire!(
                    dest_worker,
                    Wire::Marker {
                        epoch,
                        channel: ch,
                        round: $round,
                    },
                    false
                );
            }
        }};
    }

    // Wires unblocked by alignment completion get queued here and are
    // processed before anything new from the inbox.
    let mut pending: VecDeque<Wire> = VecDeque::new();

    // The actual delivery of one record into an operator: CIC
    // force/merge, bookkeeping, determinant append, operator run.
    // Callers have already done dedup and determinant-order gating.
    macro_rules! deliver_record {
        ($op_i:expr, $channel:expr, $seq:expr, $record:expr, $piggyback:expr) => {{
            let op_i = $op_i;
            let channel = $channel;
            let seq = $seq;
            let record = $record;
            let piggyback = $piggyback;
            let port = pg.channel(channel).port;
            if let Some(pb) = &piggyback {
                let force = instances[op_i]
                    .cic
                    .as_ref()
                    .expect("cic")
                    .should_force(pg.channel(channel).from.0 as usize, pb);
                if force {
                    take_checkpoint!(op_i, CheckpointKind::Forced);
                }
            }
            let fresh = instances[op_i].book.deliver(channel, seq);
            assert!(fresh);
            if cfg.protocol.logs_messages() {
                // Absolute delivery position = deliveries so far - 1;
                // checkpoints derive the same number from their recv
                // watermarks (`CheckpointMeta::det_pos`). Re-deliveries
                // during replay land below the log's end and are
                // idempotently ignored.
                let pos = instances[op_i].book.total_received() - 1;
                if cfg.buffered_logs {
                    // Staged now, published (and counted if fresh) at the
                    // next flush — always before the wires this delivery
                    // produces become visible.
                    det_stage.stage(instances[op_i].idx.0, pos, (channel, seq));
                    staged_appends += 1;
                } else {
                    let mut det = shared.dets[instances[op_i].idx.0 as usize].lock();
                    let before = det.end_pos();
                    det.append(pos, channel, seq);
                    if det.end_pos() > before {
                        determinants += 1;
                    }
                }
            }
            if let (Some(cic), Some(pb)) = (instances[op_i].cic.as_mut(), &piggyback) {
                cic.on_deliver(pg.channel(channel).from.0 as usize, pb);
            }
            let is_sink = matches!(pg.logical().ops()[op_i].role, OpRole::Sink);
            if is_sink {
                sink_records += 1;
                let lat = now_ns(&start).saturating_sub(record.ingest_time);
                latencies.push(Duration::from_nanos(lat));
            }
            events += 1;
            run_and_route!(op_i, port, record);
        }};
    }

    // One data record's arrival: dedup, then the determinant-order gate
    // (park wires ahead of their logged turn during recovery replay),
    // then delivery.
    macro_rules! handle_data {
        ($channel:expr, $seq:expr, $record:expr, $piggyback:expr, $replayed:expr) => {{
            let channel = $channel;
            let seq = $seq;
            let to = pg.channel(channel).to;
            let op_i = pg.instance_id(to).op.0 as usize;
            let last = instances[op_i].book.last_received(channel);
            if seq <= last {
                assert!($replayed, "non-replay duplicate");
            } else if !instances[op_i].det_replay.is_empty() {
                if $replayed {
                    replayed += 1;
                }
                if instances[op_i].det_replay.front() == Some(&(channel, seq)) {
                    instances[op_i].det_replay.pop_front();
                    deliver_record!(op_i, channel, seq, $record, $piggyback);
                    // Deliveries already parked may now be due — drain
                    // the front of the determinant suffix as far as the
                    // parked set reaches.
                    loop {
                        let Some(&front) = instances[op_i].det_replay.front() else {
                            break;
                        };
                        let Some((rec, pb)) = instances[op_i].det_parked.remove(&front) else {
                            break;
                        };
                        instances[op_i].det_replay.pop_front();
                        deliver_record!(op_i, front.0, front.1, rec, pb);
                    }
                    if instances[op_i].det_replay.is_empty() {
                        // Replay complete: anything still parked is
                        // fresh post-crash traffic with no logged order;
                        // release it in channel/sequence order (per-
                        // channel FIFO is all that must hold).
                        while let Some(((ch2, s2), (rec, pb))) =
                            instances[op_i].det_parked.pop_first()
                        {
                            deliver_record!(op_i, ch2, s2, rec, pb);
                        }
                    }
                } else {
                    instances[op_i]
                        .det_parked
                        .insert((channel, seq), ($record, $piggyback));
                }
            } else {
                if $replayed {
                    replayed += 1;
                }
                deliver_record!(op_i, channel, seq, $record, $piggyback);
            }
        }};
    }

    macro_rules! handle_wire {
        ($wire:expr) => {{
            let wire = $wire;
            if wire.epoch() == epoch && !dead {
                let ch = wire.channel();
                if blocked.contains(&ch) {
                    stash.entry(ch).or_default().push_back(wire);
                } else {
                    match wire {
                        Wire::Marker { round, channel, .. } => {
                            let op_i = pg.instance_id(pg.channel(channel).to).op.0 as usize;
                            let action = instances[op_i]
                                .aligner
                                .as_mut()
                                .expect("aligned instance")
                                .on_marker(channel, round);
                            match action {
                                MarkerAction::Block => {
                                    blocked.insert(channel);
                                }
                                MarkerAction::Checkpoint { round, unblock } => {
                                    take_checkpoint!(op_i, CheckpointKind::Coordinated { round });
                                    forward_markers!(op_i, round);
                                    // Re-queue stashed wires (in original
                                    // order) ahead of new inbox traffic.
                                    let mut unstashed = VecDeque::new();
                                    for c in unblock {
                                        blocked.remove(&c);
                                        if let Some(q) = stash.remove(&c) {
                                            unstashed.extend(q);
                                        }
                                    }
                                    while let Some(wq) = unstashed.pop_back() {
                                        pending.push_front(wq);
                                    }
                                }
                            }
                        }
                        Wire::Data {
                            channel,
                            seq,
                            record,
                            piggyback,
                            replayed,
                            ..
                        } => {
                            handle_data!(channel, seq, record, piggyback, replayed);
                        }
                        Wire::DataBatch {
                            channel,
                            start_seq,
                            items,
                            replayed,
                            ..
                        } => {
                            for (i, (record, piggyback)) in items.into_iter().enumerate() {
                                handle_data!(
                                    channel,
                                    start_seq + i as u64,
                                    record,
                                    piggyback,
                                    replayed
                                );
                            }
                        }
                    }
                }
            }
        }};
    }

    loop {
        // Control first.
        while let Ok(ctrl) = crx.try_recv() {
            match ctrl {
                Ctrl::TriggerRound(round) => {
                    if !dead && !paused && cfg.protocol == ProtocolKind::Coordinated {
                        for op_i in 0..instances.len() {
                            if instances[op_i].stream.is_some() {
                                take_checkpoint!(op_i, CheckpointKind::Coordinated { round });
                                forward_markers!(op_i, round);
                            }
                        }
                    }
                }
                Ctrl::Kill => {
                    dead = true;
                    // crash: lose in-memory state, queued input and any
                    // staged or parked (not yet delivered) outbound
                    // records — exactly what dies with a real process.
                    instances = build_instances(cfg.protocol);
                    inboxes[w as usize].clear();
                    inbox_scratch.clear();
                    blocked.clear();
                    stash.clear();
                    pending.clear();
                    out_buf.clear();
                    chan_stage.clear();
                    det_stage.clear();
                    claim_stage.clear();
                    for q in out_pending.iter_mut() {
                        q.clear();
                    }
                    out_pending_total = 0;
                }
                Ctrl::Pause => {
                    paused = true;
                    let _ = note.send(Note::Paused(w));
                }
                Ctrl::Restore(line) => {
                    instances = build_instances(cfg.protocol);
                    let durable = DurableCheckpoints::new(Arc::clone(&shared.store));
                    for inst in instances.iter_mut() {
                        let meta = &line[&pg.instance_id(inst.idx).op];
                        if let Some(bytes) = durable.read_state(meta) {
                            inst.restore_from(&bytes);
                        }
                        inst.ckpt_index = meta.id.index;
                        inst.last_manifest = meta.manifest.clone();
                        if let Some(aligner) = inst.aligner.as_mut() {
                            aligner.reset_to_round(meta.kind.round().unwrap_or(0));
                        }
                        if cfg.protocol.logs_messages() {
                            // Arm determinant-ordered replay: reproduce
                            // the logged delivery order from the restored
                            // checkpoint's position onward.
                            inst.det_replay = shared.dets[inst.idx.0 as usize]
                                .lock()
                                .suffix_from(meta.det_pos());
                            inst.det_parked.clear();
                        }
                        if cfg.steal_sources && inst.stream.is_some() {
                            // Arm claim-ordered replay: re-poll exactly
                            // the journaled claims past the restored
                            // checkpoint, in their original order (the
                            // cursor handoff for stolen partitions).
                            inst.claim_replay = shared.claims[inst.idx.0 as usize]
                                .lock()
                                .suffix_from(inst.claim_pos);
                        }
                    }
                    blocked.clear();
                    stash.clear();
                    pending.clear();
                    out_buf.clear();
                    chan_stage.clear();
                    det_stage.clear();
                    claim_stage.clear();
                    for q in out_pending.iter_mut() {
                        q.clear();
                    }
                    out_pending_total = 0;
                    inboxes[w as usize].clear();
                    inbox_scratch.clear();
                    let _ = note.send(Note::Restored(w));
                }
                Ctrl::Resume(new_epoch) => {
                    epoch = new_epoch;
                    dead = false;
                    paused = false;
                    next_local_ckpt = start.elapsed() + cfg.checkpoint_interval;
                }
                Ctrl::Stop => {
                    stopped = true;
                }
            }
        }
        if stopped {
            break;
        }
        // Heartbeat: a live thread (paused or not) stamps every
        // iteration; a killed one goes silent, which is what the
        // coordinator's failure detector watches for. Real systems
        // detect crashes by missing heartbeats, not by being told.
        if !dead {
            hb[w as usize].store(now_ns(&start).max(1), Ordering::Relaxed);
        }
        if paused || dead {
            quiet.fetch_and(!quiet_bit, Ordering::Relaxed);
            std::thread::sleep(Duration::from_micros(200));
            continue;
        }

        let mut any = false;

        // Retry backpressured sends first; while any remain the worker
        // admits no new source input (the backpressure contract).
        let mut backpressured = false;
        for dest in 0..cfg.parallelism as usize {
            while let Some((wire, force)) = out_pending[dest].pop_front() {
                if force {
                    inboxes[dest].force_push(wire);
                    out_pending_total -= 1;
                    any = true;
                } else {
                    match inboxes[dest].try_push(wire) {
                        Ok(()) => {
                            out_pending_total -= 1;
                            any = true;
                        }
                        Err(wire) => {
                            out_pending[dest].push_front((wire, false));
                            break;
                        }
                    }
                }
            }
            if !out_pending[dest].is_empty() {
                backpressured = true;
            }
        }

        // Unblocked backlog first, then the inbox (bounded batch to stay
        // responsive to control).
        // Drain admitted work even while backpressured: a worker that
        // stopped draining because its *sends* bounce can deadlock with
        // a peer in the same state (both inboxes full, nobody moving).
        // Draining always is what makes the system deadlock-free — the
        // throttle is on admission (source polls below), and new sends
        // queue behind the parked backlog so per-channel FIFO holds.
        //
        // One wire at a time, `pending` first: a marker that releases a
        // blocked channel's stash puts those (older) wires into
        // `pending`, and they must go before anything popped later —
        // interleaving any other way breaks per-channel FIFO and trips
        // the delivery-order assertion.
        let mut budget = 64usize;
        while budget > 0 {
            let wire = if let Some(wire) = pending.pop_front() {
                wire
            } else if let Some(wire) = inbox_scratch.pop_front() {
                wire
            } else {
                if inboxes[w as usize].pop_into(budget, &mut inbox_scratch) == 0 {
                    break;
                }
                continue;
            };
            any = true;
            budget -= 1;
            handle_wire!(wire);
        }

        // Source polling by wall clock, merged across streams in
        // schedule order: each step delivers the pollable record with
        // the earliest availability time, so multi-stream interleaving
        // matches the virtual-time engine's (which delivers in modeled
        // time order) even when a backlog built up — e.g. right after a
        // recovery pause. The rotating dispatcher order only breaks
        // exact-tie availabilities. Skipped while backpressured or while
        // this worker's own inbox is over capacity (self-sends would
        // balloon it past the bound).
        let now = now_ns(&start);
        // Strict sequential admission (oracle mode): nothing may be in
        // flight locally before the next record enters, and only one
        // enters per iteration — its cascade flushes and drains first.
        let strict_ok = !cfg.strict_source_order
            || (pending.is_empty()
                && inbox_scratch.is_empty()
                && out_pending_total == 0
                && inboxes[w as usize].is_empty());
        if !backpressured && strict_ok && inboxes[w as usize].len() < cfg.inbox_capacity {
            let mut budget = if cfg.strict_source_order {
                1
            } else {
                cfg.source_batch as u64 * source_slots.len() as u64
            };
            if cfg.steal_sources {
                // Claim replay first: a restored instance re-polls
                // exactly the journaled claims past its checkpoint, in
                // original order, without touching the shared cursors or
                // re-journaling — deterministic regeneration, deduped by
                // sequence downstream.
                'replay: for &op_i in &source_slots {
                    while let Some(c) = instances[op_i].claim_replay.front().copied() {
                        if budget == 0 {
                            break 'replay;
                        }
                        instances[op_i].claim_replay.pop_front();
                        instances[op_i].claim_pos += 1;
                        let stream = instances[op_i].stream.expect("source slot") as usize;
                        for off in c.start..c.end() {
                            let entry = logs[stream]
                                .poll(c.partition, off, now)
                                .expect("journaled claim no longer pollable");
                            events += 1;
                            run_and_route!(op_i, PortId(0), entry.record);
                        }
                        any = true;
                        budget = budget.saturating_sub(c.len as u64);
                    }
                }
                // Fresh claims: CAS a contiguous run off a shared
                // partition cursor — own partitions first, a starved
                // peer's partition when none of ours has claimable
                // backlog.
                let replay_pending = source_slots
                    .iter()
                    .any(|&op_i| !instances[op_i].claim_replay.is_empty());
                let try_claim = |stream: usize, partition: u32, budget: u64| -> Option<Claim> {
                    let slot = &shared.cursors[stream * n_parts + partition as usize];
                    loop {
                        let cur = slot.load(Ordering::Acquire);
                        if logs[stream].exhausted(cur) {
                            return None;
                        }
                        let n = logs[stream]
                            .lag(cur, now)
                            .min(budget)
                            .min(cfg.source_batch as u64);
                        if n == 0 {
                            return None;
                        }
                        if slot
                            .compare_exchange(cur, cur + n, Ordering::AcqRel, Ordering::Acquire)
                            .is_ok()
                        {
                            return Some(Claim {
                                partition,
                                start: cur,
                                len: n as u32,
                            });
                        }
                        // Raced with another claimant; re-read and retry.
                    }
                };
                while budget > 0 && !replay_pending {
                    let mut claimed: Option<(usize, Claim)> = None;
                    for op_i in dispatcher.order() {
                        let stream = instances[op_i].stream.expect("source slot") as usize;
                        if let Some(c) = try_claim(stream, w, budget) {
                            claimed = Some((op_i, c));
                            break;
                        }
                    }
                    if claimed.is_none() {
                        // Steal path: viable victims are foreign
                        // partitions whose backlog clears the handoff
                        // threshold (a full claim batch) — helping a
                        // genuinely starved peer, not shaving a peer
                        // that is merely one poll behind.
                        let mut candidates: Vec<(usize, u32)> = Vec::new();
                        let mut thin_backlog = false;
                        for &op_i in &source_slots {
                            let stream = instances[op_i].stream.expect("source slot") as usize;
                            for p in 0..n_parts as u32 {
                                if p == w {
                                    continue;
                                }
                                let cur = shared.cursors[stream * n_parts + p as usize]
                                    .load(Ordering::Acquire);
                                if logs[stream].exhausted(cur) {
                                    continue;
                                }
                                let backlog = logs[stream].lag(cur, now);
                                if backlog >= cfg.source_batch as u64 {
                                    candidates.push((op_i, p));
                                } else if backlog > 0 {
                                    thin_backlog = true;
                                }
                            }
                        }
                        match dispatcher.steal(&candidates) {
                            Some((op_i, victim)) => {
                                let stream = instances[op_i].stream.expect("source slot") as usize;
                                if let Some(c) = try_claim(stream, victim, budget) {
                                    steals += 1;
                                    claimed = Some((op_i, c));
                                } else {
                                    // Lost the race for the victim's
                                    // backlog to its owner or another
                                    // thief.
                                    steal_denied += 1;
                                }
                            }
                            None => {
                                if thin_backlog {
                                    // Foreign backlog exists but is under
                                    // the handoff threshold.
                                    steal_denied += 1;
                                }
                            }
                        }
                    }
                    let Some((op_i, c)) = claimed else {
                        break;
                    };
                    // Journal-then-ingest: the claim is journaled before
                    // its records route, so it publishes no later than
                    // the wires it produced (`publish_order_stages` on
                    // the buffered path, a direct locked append on the
                    // oracle path).
                    if cfg.buffered_logs {
                        claim_stage.stage(instances[op_i].idx.0, instances[op_i].claim_pos, c);
                        staged_appends += 1;
                    } else {
                        shared.claims[instances[op_i].idx.0 as usize]
                            .lock()
                            .append(instances[op_i].claim_pos, c);
                    }
                    instances[op_i].claim_pos += 1;
                    let stream = instances[op_i].stream.expect("source slot") as usize;
                    for off in c.start..c.end() {
                        let entry = logs[stream]
                            .poll(c.partition, off, now)
                            .expect("claimed offset no longer pollable");
                        events += 1;
                        run_and_route!(op_i, PortId(0), entry.record);
                    }
                    any = true;
                    budget = budget.saturating_sub(c.len as u64);
                }
            } else {
                while budget > 0 {
                    let mut best: Option<(u64, usize)> = None;
                    for op_i in dispatcher.order() {
                        let stream = instances[op_i].stream.expect("source slot") as usize;
                        let cursor = instances[op_i].cursor.expect("source");
                        let Some(at) = logs[stream].available_at(cursor.next_offset) else {
                            continue; // exhausted
                        };
                        if at <= now && best.is_none_or(|(b, _)| at < b) {
                            best = Some((at, op_i));
                        }
                    }
                    let Some((_, op_i)) = best else {
                        break;
                    };
                    let stream = instances[op_i].stream.expect("source slot") as usize;
                    let cursor = instances[op_i].cursor.expect("source");
                    let Some(entry) = logs[stream].poll(w, cursor.next_offset, now) else {
                        break;
                    };
                    any = true;
                    events += 1;
                    budget -= 1;
                    instances[op_i].cursor.as_mut().expect("source").advance();
                    run_and_route!(op_i, PortId(0), entry.record);
                }
            }
        }

        // Has every source partition been fully consumed? Under work
        // stealing ownership is fluid, so the question is global: every
        // shared partition cursor exhausted and no claim replay pending
        // anywhere locally.
        let drained = if cfg.steal_sources {
            source_slots.iter().all(|&op_i| {
                instances[op_i].claim_replay.is_empty() && {
                    let stream = instances[op_i].stream.expect("source slot") as usize;
                    (0..n_parts).all(|p| {
                        logs[stream]
                            .exhausted(shared.cursors[stream * n_parts + p].load(Ordering::Acquire))
                    })
                }
            })
        } else {
            source_slots.iter().all(|&op_i| {
                let stream = instances[op_i].stream.expect("source slot") as usize;
                let cursor = instances[op_i].cursor.expect("source");
                logs[stream].exhausted(cursor.next_offset)
            })
        };

        // Local checkpoint timers (UNC/CIC).
        if cfg.protocol.independent_checkpoints() && start.elapsed() >= next_local_ckpt {
            for op_i in 0..instances.len() {
                take_checkpoint!(op_i, CheckpointKind::Local);
            }
            next_local_ckpt = start.elapsed() + cfg.checkpoint_interval;
        }

        // Everything staged this iteration goes out before we sleep or
        // hand control back — the buffer is always empty at loop top.
        flush_sends!();

        // Straggler injection: inside a scheduled slowdown window this
        // worker pays extra wall-clock per productive iteration,
        // throttling its progress without changing what it computes.
        if let Some(plan) = &cfg.storm {
            if any && !plan.stragglers.is_empty() {
                let f = plan.slowdown_at(w, now_ns(&start));
                if f > 1.0 {
                    std::thread::sleep(Duration::from_micros(
                        (100.0 * (f - 1.0)).min(5_000.0) as u64
                    ));
                }
            }
        }

        let idle = drained
            && !any
            && pending.is_empty()
            && inbox_scratch.is_empty()
            && out_pending_total == 0
            && inboxes[w as usize].is_empty();
        if idle {
            // Input consumed, nothing queued anywhere we can see: report
            // quiescence (the coordinator ends the run once every worker
            // agrees for a grace window) and wait — peers may still send.
            quiet.fetch_or(quiet_bit, Ordering::Relaxed);
            std::thread::sleep(Duration::from_micros(200));
        } else {
            quiet.fetch_and(!quiet_bit, Ordering::Relaxed);
            if !any {
                std::thread::sleep(Duration::from_micros(100));
            }
        }
    }

    // Final digest collection.
    for inst in &instances {
        if let Some(d) = inst.op.sink_digest() {
            digest_total.count = digest_total.count.wrapping_add(d.count);
            digest_total.acc = digest_total.acc.wrapping_add(d.acc);
        }
    }
    let _ = note.send(Note::Done(
        w,
        WorkerEnd {
            digest: digest_total,
            sink_records,
            latencies,
            events,
            max_out_pending,
            determinants,
            replayed,
            staged_appends,
            log_flushes,
            steals,
            steal_denied,
        },
    ));
}
