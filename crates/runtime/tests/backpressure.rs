//! Bounded-inbox backpressure under a deliberately slow sink.
//!
//! A sink that burns wall-clock time per record makes its worker the
//! bottleneck: every peer's sends bounce once that inbox fills, park in
//! the senders' `out_pending` queues, and stop the senders' source
//! polling. The proof obligations:
//!
//! - the run still completes exactly-once (every input record sinks);
//! - inbox depth stays bounded: at most `inbox_capacity` from bounded
//!   pushes plus one source burst of forced self-sends;
//! - backpressure actually engaged (the bound was hit, senders parked).

use checkmate_core::ProtocolKind;
use checkmate_dataflow::ops::{Digest, PassThroughOp};
use checkmate_dataflow::{
    DecodeError, EdgeKind, GraphBuilder, OpCtx, Operator, PortId, Record, Value,
};
use checkmate_runtime::{run_live, LiveConfig, LiveTiering};
use checkmate_storage::{TierPolicy, TieredProfile};
use checkmate_wal::EventStream;
use std::sync::Arc;
use std::time::Duration;

/// A digest sink that spins for a fixed wall-clock time per record.
struct SlowDigestSink {
    digest: Digest,
    per_record: Duration,
}

impl Operator for SlowDigestSink {
    fn on_record(&mut self, _port: PortId, rec: Record, _ctx: &mut OpCtx) {
        let t = std::time::Instant::now();
        while t.elapsed() < self.per_record {
            std::hint::spin_loop();
        }
        self.digest.add(&rec);
    }

    fn snapshot(&self) -> Vec<u8> {
        let mut enc = checkmate_dataflow::Enc::with_capacity(16);
        enc.u64(self.digest.count).u64(self.digest.acc);
        enc.finish()
    }

    fn restore(&mut self, bytes: &[u8]) -> Result<(), DecodeError> {
        let mut dec = checkmate_dataflow::Dec::new(bytes);
        self.digest.count = dec.u64()?;
        self.digest.acc = dec.u64()?;
        dec.finish()
    }

    fn state_size(&self) -> usize {
        16
    }

    fn reset(&mut self) {
        self.digest = Digest::default();
    }

    fn sink_digest(&self) -> Option<Digest> {
        Some(self.digest)
    }
}

/// An eager bounded stream: every record available from t = 0, so the
/// sources outrun the sink immediately.
struct FloodStream {
    partitions: u32,
}

impl EventStream for FloodStream {
    fn partitions(&self) -> u32 {
        self.partitions
    }

    fn record(&self, partition: u32, offset: u64) -> Record {
        Record {
            key: offset * self.partitions as u64 + partition as u64,
            value: Value::U64(offset),
            ingest_time: 0,
        }
    }
}

#[test]
fn slow_sink_bounds_inbox_memory_and_loses_nothing() {
    const PARALLELISM: u32 = 3;
    const LIMIT: u64 = 1_500;
    const CAPACITY: usize = 64;
    const SOURCE_BATCH: u32 = 32;

    let mut b = GraphBuilder::new();
    let src = b.source("src", 0, 120_000, Arc::new(|_| Box::new(PassThroughOp)));
    let sink = b.sink(
        "slow_sink",
        90_000,
        Arc::new(|_| {
            Box::new(SlowDigestSink {
                digest: Digest::default(),
                per_record: Duration::from_micros(50),
            })
        }),
    );
    b.connect(src, sink, EdgeKind::Shuffle);
    let graph = b.build().expect("graph");

    // The safety properties (exactly-once, bounded depth) must hold on
    // every run; whether an inbox actually *fills* depends on the OS
    // scheduler giving the producers a head start, so the engagement
    // check tolerates a couple of pathological schedules.
    let mut last = None;
    for _attempt in 0..3 {
        let r = run_live(
            &graph,
            vec![Arc::new(FloodStream {
                partitions: PARALLELISM,
            })],
            LiveConfig {
                parallelism: PARALLELISM,
                protocol: ProtocolKind::Uncoordinated,
                // Input due immediately; the sink (~50 µs/record) is
                // the bottleneck, not the schedule.
                rate_per_partition: 1_000_000.0,
                records_per_partition: LIMIT,
                checkpoint_interval: Duration::from_millis(200),
                timeout: Duration::from_secs(60),
                inbox_capacity: CAPACITY,
                // One record per wire: inbox depth then counts records,
                // so the capacity bound is a direct memory bound and the
                // slow sink reliably fills its inbox (with coalescing on,
                // a handful of big batches can carry the whole backlog
                // without ever holding `capacity` wires at once).
                batch_max: 1,
                source_batch: SOURCE_BATCH,
                ..LiveConfig::default()
            },
        );

        assert_eq!(
            r.sink_digest.count,
            LIMIT * PARALLELISM as u64,
            "exactly-once despite sustained backpressure: {}",
            r.summary()
        );
        // Bounded pushes respect the capacity; the only overshoot
        // allowed is one burst of forced self-sends from the inbox
        // owner's own sources (admission is gated on `len < capacity`
        // before each burst).
        let bound = CAPACITY + SOURCE_BATCH as usize;
        assert!(
            r.max_inbox_depth <= bound,
            "inbox ballooned: depth {} > bound {bound}",
            r.max_inbox_depth
        );
        let engaged = r.max_inbox_depth >= CAPACITY && r.max_out_pending > 0;
        last = Some(r);
        if engaged {
            return;
        }
    }
    panic!(
        "backpressure never engaged in 3 runs (no full inbox + parked wire): {}",
        last.expect("ran at least once").summary()
    );
}

/// The uploader's maintenance timer must not busy-spin: with a 2 ms
/// compaction cadence and a mostly-idle compactor, the naive
/// `recv_timeout` loop would wake `elapsed / 2 ms` times doing nothing.
/// The idle backoff doubles the timer on consecutive no-op passes (up
/// to 64×), so no-op wakeups stay a small fraction of that — here the
/// slow sink stretches the run long enough that the difference is
/// unambiguous.
#[test]
fn idle_uploader_backs_off_instead_of_spinning() {
    const PARALLELISM: u32 = 2;
    const LIMIT: u64 = 1_200;

    let mut b = GraphBuilder::new();
    let src = b.source("src", 0, 120_000, Arc::new(|_| Box::new(PassThroughOp)));
    let sink = b.sink(
        "slow_sink",
        90_000,
        Arc::new(|_| {
            Box::new(SlowDigestSink {
                digest: Digest::default(),
                per_record: Duration::from_micros(100),
            })
        }),
    );
    b.connect(src, sink, EdgeKind::Shuffle);
    let graph = b.build().expect("graph");

    let r = run_live(
        &graph,
        vec![Arc::new(FloodStream {
            partitions: PARALLELISM,
        })],
        LiveConfig {
            parallelism: PARALLELISM,
            protocol: ProtocolKind::Uncoordinated,
            rate_per_partition: 1_000_000.0,
            records_per_partition: LIMIT,
            checkpoint_interval: Duration::from_millis(200),
            timeout: Duration::from_secs(60),
            tiering: Some(LiveTiering {
                tiers: TieredProfile::standard(),
                policy: TierPolicy::default(),
                maintain_every: Duration::from_millis(2),
            }),
            ..LiveConfig::default()
        },
    );

    assert_eq!(
        r.sink_digest.count,
        LIMIT * PARALLELISM as u64,
        "lost records: {}",
        r.summary()
    );
    let naive = (r.elapsed.as_millis() / 2) as u64;
    assert!(
        r.uploader_idle_wakeups < naive / 4 + 16,
        "idle uploader spun {} no-op wakeups over {:?} (naive cadence \
         would be ~{naive}) — the backoff is not engaging",
        r.uploader_idle_wakeups,
        r.elapsed
    );
}
