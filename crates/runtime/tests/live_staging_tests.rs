//! Staged-append and work-stealing equivalence: the contention-free
//! data plane (`buffered_logs`, worker-local append arenas published at
//! flush boundaries) and the claim-journal work-stealing dispatcher
//! (`steal_sources`) must be pure performance knobs — every sink digest
//! bit-identical to the locked-oracle, no-steal run, failure-free and
//! under scripted kill schedules and the PR 8 overlapping fault storm.

use checkmate_core::{BrownoutWindow, FaultPlan, KillEvent, ProtocolKind, StragglerWindow};
use checkmate_dataflow::ops::{DigestSinkOp, KeyedCounterOp, PassThroughOp};
use checkmate_dataflow::{EdgeKind, GraphBuilder, LogicalGraph, Record, Value};
use checkmate_runtime::{run_live, LiveConfig};
use checkmate_wal::EventStream;
use proptest::prelude::*;
use std::sync::Arc;
use std::time::Duration;

const MS: u64 = 1_000_000;

const PROTOCOLS: [ProtocolKind; 4] = [
    ProtocolKind::Coordinated,
    ProtocolKind::Uncoordinated,
    ProtocolKind::CommunicationInduced,
    ProtocolKind::CommunicationInducedBcs,
];

struct TestStream {
    partitions: u32,
}

impl EventStream for TestStream {
    fn partitions(&self) -> u32 {
        self.partitions
    }
    fn record(&self, partition: u32, offset: u64) -> Record {
        let g = offset * self.partitions as u64 + partition as u64;
        Record::new(g % 37, Value::U64(g), 0)
    }
}

fn counting_graph() -> LogicalGraph {
    let mut b = GraphBuilder::new();
    let src = b.source("src", 0, 0, Arc::new(|_| Box::new(PassThroughOp)));
    let cnt = b.op("count", 0, Arc::new(|_| Box::new(KeyedCounterOp::new())));
    let sink = b.sink("sink", 0, Arc::new(|_| Box::new(DigestSinkOp::new())));
    b.connect(src, cnt, EdgeKind::Shuffle);
    b.connect(cnt, sink, EdgeKind::Forward);
    b.build().unwrap()
}

fn cfg(protocol: ProtocolKind, storm: Option<FaultPlan>) -> LiveConfig {
    LiveConfig {
        parallelism: 3,
        protocol,
        rate_per_partition: 1_500.0,
        records_per_partition: 1_500,
        checkpoint_interval: Duration::from_millis(120),
        storm,
        timeout: Duration::from_secs(60),
        ..LiveConfig::default()
    }
}

fn streams() -> Vec<Arc<dyn EventStream>> {
    vec![Arc::new(TestStream { partitions: 3 })]
}

/// The PR 8 storm fixture: a correlated kill pair, a straggler window,
/// and a third kill inside a storage brownout.
fn overlapping_storm() -> FaultPlan {
    FaultPlan {
        seed: 0,
        kills: vec![
            KillEvent {
                at_ns: 300 * MS,
                worker: 0,
            },
            KillEvent {
                at_ns: 320 * MS,
                worker: 1,
            },
            KillEvent {
                at_ns: 800 * MS,
                worker: 2,
            },
        ],
        stragglers: vec![StragglerWindow {
            worker: 1,
            from_ns: 400 * MS,
            until_ns: 700 * MS,
            slowdown: 2.0,
        }],
        brownouts: vec![BrownoutWindow {
            from_ns: 700 * MS,
            until_ns: 1_200 * MS,
            put_fail_p: 0.5,
            get_fail_p: 0.2,
            extra_latency_ns: MS / 2,
        }],
    }
}

/// Buffered staging is a pure transport optimization: under the full
/// PR 8 fault storm every protocol's digest matches the locked oracle
/// bit for bit, and the health counters prove each mode actually took
/// its path (stages drain on the buffered side, never on the oracle).
#[test]
fn staged_appends_match_locked_oracle_under_storm() {
    let graph = counting_graph();
    for protocol in PROTOCOLS {
        let oracle = run_live(
            &graph,
            streams(),
            LiveConfig {
                buffered_logs: false,
                ..cfg(protocol, Some(overlapping_storm()))
            },
        );
        let buffered = run_live(
            &graph,
            streams(),
            LiveConfig {
                buffered_logs: true,
                ..cfg(protocol, Some(overlapping_storm()))
            },
        );
        assert_eq!(
            buffered.sink_digest,
            oracle.sink_digest,
            "{protocol}: staged appends changed the digest under storm\n\
             oracle:   {}\nbuffered: {}",
            oracle.summary(),
            buffered.summary()
        );
        assert!(buffered.recovered && oracle.recovered);
        assert_eq!(
            oracle.staged_appends,
            0,
            "{protocol}: the locked oracle must never stage: {}",
            oracle.summary()
        );
        assert_eq!(oracle.log_flushes, 0);
        if protocol.logs_messages() {
            assert!(
                buffered.staged_appends > 0,
                "{protocol}: buffered logging run staged nothing: {}",
                buffered.summary()
            );
            assert!(
                buffered.log_flushes > 0,
                "{protocol}: staged appends were never published: {}",
                buffered.summary()
            );
            // Bulk publication is the whole point: many appends must
            // share each lock acquisition on average.
            assert!(
                buffered.staged_appends > buffered.log_flushes,
                "{protocol}: staging published one item per flush: {}",
                buffered.summary()
            );
        }
    }
}

/// Work stealing under imbalance and a kill: a straggler window forces
/// a real backlog gap so drained peers steal, then a kill lands and
/// recovery must replay the journaled claims — the digest still matches
/// a clean run with stealing off.
#[test]
fn steal_under_kill_is_exactly_once() {
    let graph = counting_graph();
    let plan = FaultPlan {
        seed: 0,
        kills: vec![KillEvent {
            at_ns: 350 * MS,
            worker: 0,
        }],
        stragglers: vec![StragglerWindow {
            worker: 1,
            from_ns: 100 * MS,
            until_ns: 600 * MS,
            slowdown: 4.0,
        }],
        brownouts: Vec::new(),
    };
    for protocol in [ProtocolKind::Uncoordinated, ProtocolKind::Coordinated] {
        let baseline = run_live(&graph, streams(), cfg(protocol, None));
        // Both transports: the claim journal is staged-then-published on
        // the buffered path and appended under the lock on the oracle
        // path; a kill must replay it correctly either way. Flood the
        // schedule: with every record due immediately, the 4x straggler
        // accumulates a real backlog (a rate-limited schedule keeps
        // every partition's lag under the handoff threshold and steals
        // are all denied as thin).
        for buffered in [true, false] {
            let stolen = run_live(
                &graph,
                streams(),
                LiveConfig {
                    steal_sources: true,
                    buffered_logs: buffered,
                    rate_per_partition: 1e9,
                    ..cfg(protocol, Some(plan.clone()))
                },
            );
            assert_eq!(
                stolen.sink_digest,
                baseline.sink_digest,
                "{protocol} buffered={buffered}: steal + kill broke exactly-once\n\
                 baseline: {}\nstolen:   {}",
                baseline.summary(),
                stolen.summary()
            );
            assert!(
                stolen.recovered,
                "{protocol} buffered={buffered}: kill never recovered"
            );
            assert!(
                stolen.steals > 0,
                "{protocol} buffered={buffered}: a 4x straggler produced no steals: {}",
                stolen.summary()
            );
        }
    }
}

/// Failure-free stealing on a balanced input still matches the
/// partition-affine dispatch digest (steals may or may not fire — with
/// no straggler the backlog rarely clears the handoff threshold — but
/// the result must be identical either way).
#[test]
fn steal_failure_free_matches_affine_dispatch() {
    let graph = counting_graph();
    for protocol in PROTOCOLS {
        let affine = run_live(&graph, streams(), cfg(protocol, None));
        let stealing = run_live(
            &graph,
            streams(),
            LiveConfig {
                steal_sources: true,
                ..cfg(protocol, None)
            },
        );
        assert_eq!(
            stealing.sink_digest,
            affine.sink_digest,
            "{protocol}: steal dispatch changed a failure-free digest\n\
             affine:   {}\nstealing: {}",
            affine.summary(),
            stealing.summary()
        );
        assert_eq!(stealing.sink_records, affine.sink_records);
    }
}

proptest! {
    // Every case is six full threaded runs (~2 s each), so very few
    // cases; CI pins PROPTEST_CASES as the upper bound.
    #![proptest_config(ProptestConfig::with_cases(4))]

    /// Randomized kill schedules: for any 1-2 kills at arbitrary times
    /// inside the input window, buffered and oracle transports agree
    /// with each other and with the clean baseline, for both logging
    /// protocols.
    #[test]
    fn staged_equals_oracle_under_random_kills(
        kill_times in proptest::collection::vec((50u64..900, 0u32..3), 1..3),
        proto_idx in 0usize..2,
    ) {
        let protocol = [
            ProtocolKind::Uncoordinated,
            ProtocolKind::CommunicationInduced,
        ][proto_idx];
        let mut kills: Vec<KillEvent> = kill_times
            .iter()
            .map(|&(at_ms, worker)| KillEvent { at_ns: at_ms * MS, worker })
            .collect();
        kills.sort_by_key(|k| k.at_ns);
        let plan = FaultPlan {
            seed: 0,
            kills,
            stragglers: Vec::new(),
            brownouts: Vec::new(),
        };
        let graph = counting_graph();
        let clean = run_live(&graph, streams(), cfg(protocol, None));
        let oracle = run_live(&graph, streams(), LiveConfig {
            buffered_logs: false,
            ..cfg(protocol, Some(plan.clone()))
        });
        let buffered = run_live(&graph, streams(), LiveConfig {
            buffered_logs: true,
            ..cfg(protocol, Some(plan))
        });
        prop_assert_eq!(
            buffered.sink_digest, oracle.sink_digest,
            "digest split between transports\noracle:   {}\nbuffered: {}",
            oracle.summary(), buffered.summary()
        );
        prop_assert_eq!(
            buffered.sink_digest, clean.sink_digest,
            "killed run diverged from clean baseline\nclean:    {}\nbuffered: {}",
            clean.summary(), buffered.summary()
        );
    }
}
