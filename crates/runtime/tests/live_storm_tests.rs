//! Live failure storms: the threaded runtime under a deterministic
//! multi-fault schedule ([`FaultPlan`]) — overlapping kills detected by
//! heartbeat silence, straggler slowdowns, and storage brownout windows
//! with bounded-retry checkpoint deferral — must stay exactly-once
//! against a clean run's digest.

use checkmate_core::{BrownoutWindow, FaultPlan, KillEvent, ProtocolKind, StragglerWindow};
use checkmate_dataflow::ops::{DigestSinkOp, KeyedCounterOp, PassThroughOp};
use checkmate_dataflow::{EdgeKind, GraphBuilder, LogicalGraph, Record, Value};
use checkmate_runtime::{run_live, LiveConfig};
use checkmate_wal::EventStream;
use std::sync::Arc;
use std::time::Duration;

const MS: u64 = 1_000_000;

const PROTOCOLS: [ProtocolKind; 4] = [
    ProtocolKind::Coordinated,
    ProtocolKind::Uncoordinated,
    ProtocolKind::CommunicationInduced,
    ProtocolKind::CommunicationInducedBcs,
];

struct TestStream {
    partitions: u32,
}

impl EventStream for TestStream {
    fn partitions(&self) -> u32 {
        self.partitions
    }
    fn record(&self, partition: u32, offset: u64) -> Record {
        let g = offset * self.partitions as u64 + partition as u64;
        Record::new(g % 37, Value::U64(g), 0)
    }
}

fn counting_graph() -> LogicalGraph {
    let mut b = GraphBuilder::new();
    let src = b.source("src", 0, 0, Arc::new(|_| Box::new(PassThroughOp)));
    let cnt = b.op("count", 0, Arc::new(|_| Box::new(KeyedCounterOp::new())));
    let sink = b.sink("sink", 0, Arc::new(|_| Box::new(DigestSinkOp::new())));
    b.connect(src, cnt, EdgeKind::Shuffle);
    b.connect(cnt, sink, EdgeKind::Forward);
    b.build().unwrap()
}

/// One-second input window: late fault events still land mid-run.
fn cfg(protocol: ProtocolKind, storm: Option<FaultPlan>) -> LiveConfig {
    LiveConfig {
        parallelism: 3,
        protocol,
        rate_per_partition: 1_500.0,
        records_per_partition: 1_500,
        checkpoint_interval: Duration::from_millis(120),
        storm,
        timeout: Duration::from_secs(60),
        ..LiveConfig::default()
    }
}

fn streams() -> Vec<Arc<dyn EventStream>> {
    vec![Arc::new(TestStream { partitions: 3 })]
}

/// Three overlapping kills — a correlated pair 20 ms apart (the second
/// typically lands while the first's recovery is still in flight and is
/// folded into it by the restartable recovery loop), then a third kill
/// *inside* a storage brownout, so its restore GETs run against
/// elevated transient failure rates and lean on the store's bounded
/// retry/backoff.
fn overlapping_storm() -> FaultPlan {
    FaultPlan {
        seed: 0,
        kills: vec![
            KillEvent {
                at_ns: 300 * MS,
                worker: 0,
            },
            KillEvent {
                at_ns: 320 * MS,
                worker: 1,
            },
            KillEvent {
                at_ns: 800 * MS,
                worker: 2,
            },
        ],
        stragglers: vec![StragglerWindow {
            worker: 1,
            from_ns: 400 * MS,
            until_ns: 700 * MS,
            slowdown: 2.0,
        }],
        brownouts: vec![BrownoutWindow {
            from_ns: 700 * MS,
            until_ns: 1_200 * MS,
            put_fail_p: 0.5,
            get_fail_p: 0.2,
            extra_latency_ns: MS / 2,
        }],
    }
}

#[test]
fn live_exactly_once_under_overlapping_kills_and_brownout() {
    let graph = counting_graph();
    for protocol in PROTOCOLS {
        let clean = run_live(&graph, streams(), cfg(protocol, None));
        let stormy = run_live(&graph, streams(), cfg(protocol, Some(overlapping_storm())));
        assert_eq!(
            stormy.sink_digest,
            clean.sink_digest,
            "{protocol}: live exactly-once violated under storm\nclean:  {}\nstormy: {}",
            clean.summary(),
            stormy.summary()
        );
        // Three kills: the correlated pair may fold into one recovery
        // episode, the brownout kill is always its own.
        assert!(
            (2..=3).contains(&stormy.recoveries),
            "{protocol}: expected 2-3 recoveries for 3 kills, got {}: {}",
            stormy.recoveries,
            stormy.summary()
        );
        assert!(stormy.recovered);
        // The brownout overlapped dozens of 50/50 PUT attempts; zero
        // observed retries would mean the perturbed store never engaged.
        assert!(
            stormy.store.put_retries > 0,
            "{protocol}: brownout injected no PUT retries: {}",
            stormy.summary()
        );
    }
}

#[test]
fn live_straggler_slows_nothing_but_the_clock() {
    let graph = counting_graph();
    let plan = FaultPlan {
        seed: 0,
        kills: Vec::new(),
        stragglers: vec![StragglerWindow {
            worker: 1,
            from_ns: 200 * MS,
            until_ns: 800 * MS,
            slowdown: 3.0,
        }],
        brownouts: Vec::new(),
    };
    let clean = run_live(&graph, streams(), cfg(ProtocolKind::Uncoordinated, None));
    let slowed = run_live(
        &graph,
        streams(),
        cfg(ProtocolKind::Uncoordinated, Some(plan)),
    );
    assert_eq!(slowed.sink_digest, clean.sink_digest);
    assert_eq!(slowed.recoveries, 0, "no kills scheduled");
    assert!(!slowed.recovered);
}

#[test]
fn live_total_brownout_defers_checkpoints_gracefully() {
    // put_fail_p = 1.0 ⇒ every whole-snapshot upload inside the window
    // exhausts its bounded retries and the checkpoint is deferred —
    // never acked, never durable — while the pipeline keeps processing.
    // The run must complete exactly-once and the deferral accounting
    // must line up between the uploader and the store (one object per
    // whole-snapshot checkpoint).
    let graph = counting_graph();
    let plan = FaultPlan {
        seed: 0,
        kills: Vec::new(),
        stragglers: Vec::new(),
        brownouts: vec![BrownoutWindow {
            from_ns: 300 * MS,
            until_ns: 600 * MS,
            put_fail_p: 1.0,
            get_fail_p: 0.0,
            extra_latency_ns: 0,
        }],
    };
    let clean = run_live(&graph, streams(), cfg(ProtocolKind::Uncoordinated, None));
    let r = run_live(
        &graph,
        streams(),
        cfg(ProtocolKind::Uncoordinated, Some(plan)),
    );
    assert_eq!(r.sink_digest, clean.sink_digest);
    assert!(
        r.ckpts_deferred >= 1,
        "a 300 ms total brownout must defer at least one 120 ms-interval \
         checkpoint: {}",
        r.summary()
    );
    assert_eq!(
        r.ckpts_deferred,
        r.store.puts_deferred,
        "uploader deferral count and store accounting disagree: {}",
        r.summary()
    );
    // Processing continued after the window: durable checkpoints exist.
    assert!(
        r.checkpoints > 0,
        "no checkpoint ever landed: {}",
        r.summary()
    );
}
