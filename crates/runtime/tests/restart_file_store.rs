//! Kill-and-restart durability tests over the file-backed storage
//! backend.
//!
//! The headline test spawns this test binary again as a *writer* child
//! process: the child drives a stateful operator, uploads incremental
//! checkpoints (chunks + durable metadata) into a `FileBackend`
//! directory, and then dies by `process::exit` mid-run — no graceful
//! shutdown, no flushing of anything held in memory. The parent process
//! then recovers from the directory alone: reload the metadata, compute
//! a recovery line, reassemble the chunked snapshot across its owner
//! chain, restore the operator, and keep processing.

use checkmate_core::{
    rollback_propagation, ChannelBook, CheckpointGraph, CheckpointId, CheckpointKind,
    CheckpointMeta, ChunkerConfig, DurableCheckpoints, IncrementalPolicy, ProtocolKind,
    SnapshotManifest,
};
use checkmate_dataflow::graph::InstanceIdx;
use checkmate_dataflow::ops::{DigestSinkOp, PassThroughOp, WindowedCountOp};
use checkmate_dataflow::{
    Codec, Dec, EdgeKind, Enc, GraphBuilder, OpCtx, Operator, PortId, Record, Value,
};
use checkmate_runtime::{run_live, LiveConfig};
use checkmate_storage::{FileBackend, ObjectStore, SharedStore};
use checkmate_wal::EventStream;
use std::path::PathBuf;
use std::sync::Arc;
use std::time::Duration;

const ENV_ROLE: &str = "CHECKMATE_RESTART_ROLE";
const ENV_DIR: &str = "CHECKMATE_RESTART_DIR";
const KILL_EXIT_CODE: i32 = 42;
const CHECKPOINTS: u64 = 5;
const RECORDS_PER_CHECKPOINT: u64 = 200;
const WINDOW_NS: u64 = u64::MAX; // never tumble: state only accumulates

fn file_store(dir: &PathBuf) -> SharedStore {
    ObjectStore::shared_with(Arc::new(FileBackend::open(dir).expect("open file backend")))
}

fn policy() -> IncrementalPolicy {
    IncrementalPolicy {
        chunking: ChunkerConfig::with_avg(128),
        rebase_every: 1_000,
    }
}

/// Deterministic input: the record fed to the operator as delivery
/// `seq` (1-based). Keys are monotone, so the counter map grows by
/// appending — the shape where incremental checkpoints shine (cold
/// prefix chunks stay untouched and get referenced, not re-uploaded).
fn record_for(seq: u64) -> Record {
    Record::new(seq, Value::U64(seq), 0)
}

/// Drive `n` further records into the operator/book pair.
fn drive(op: &mut WindowedCountOp, book: &mut ChannelBook, from_seq: u64, n: u64) {
    let ch = checkmate_dataflow::graph::ChannelIdx(0);
    for seq in from_seq..from_seq + n {
        let mut ctx = OpCtx::new(1); // fixed instant: stay in one window
        op.on_record(PortId(0), record_for(seq), &mut ctx);
        assert!(book.deliver(ch, seq));
    }
}

/// The checkpointed state: operator snapshot + channel book.
fn encode_state(op: &WindowedCountOp, book: &ChannelBook) -> Vec<u8> {
    let mut enc = Enc::new();
    enc.bytes(&op.snapshot());
    book.encode(&mut enc);
    enc.finish()
}

fn decode_state(bytes: &[u8]) -> (WindowedCountOp, ChannelBook) {
    let mut dec = Dec::new(bytes);
    let mut op = WindowedCountOp::new(1);
    op.restore(dec.bytes().expect("op bytes"))
        .expect("op state");
    let book = ChannelBook::decode(&mut dec).expect("book");
    dec.finish().expect("trailing bytes");
    (op, book)
}

/// Child role: checkpoint into the directory, then die hard.
fn writer_and_die() -> ! {
    let dir = PathBuf::from(std::env::var(ENV_DIR).expect("writer needs dir"));
    let durable = DurableCheckpoints::new(file_store(&dir));
    let inst = InstanceIdx(0);
    durable.persist_meta(&CheckpointMeta::initial(inst, false));
    let mut op = WindowedCountOp::new(WINDOW_NS);
    let mut book = ChannelBook::new();
    let mut prev: Option<SnapshotManifest> = None;
    for index in 1..=CHECKPOINTS {
        drive(
            &mut op,
            &mut book,
            (index - 1) * RECORDS_PER_CHECKPOINT + 1,
            RECORDS_PER_CHECKPOINT,
        );
        let state = encode_state(&op, &book);
        let (state_key, manifest, _) =
            durable.write_state(inst, index, &state, prev.as_ref(), Some(&policy()));
        let (recv_wm, sent_wm) = book.watermarks();
        let meta = CheckpointMeta {
            id: CheckpointId::new(inst, index),
            kind: CheckpointKind::Local,
            taken_at: index,
            durable_at: index,
            recv_wm,
            sent_wm,
            source_offset: None,
            state_key,
            state_bytes: state.len() as u64,
            manifest: manifest.clone(),
        };
        durable.persist_meta(&meta);
        prev = manifest;
    }
    // Die without any cleanup: in-memory state, manifests, indices —
    // everything not already on disk is lost.
    std::process::exit(KILL_EXIT_CODE);
}

#[test]
fn kill_the_process_and_recover_from_file_backend() {
    if std::env::var(ENV_ROLE).as_deref() == Ok("writer") {
        writer_and_die();
    }
    let dir = std::env::temp_dir().join(format!("checkmate-restart-test-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);

    // Phase 1: a separate process checkpoints, then is killed.
    let exe = std::env::current_exe().expect("test binary path");
    let status = std::process::Command::new(exe)
        .args([
            "kill_the_process_and_recover_from_file_backend",
            "--exact",
            "--nocapture",
        ])
        .env(ENV_ROLE, "writer")
        .env(ENV_DIR, &dir)
        .status()
        .expect("spawn writer child");
    assert_eq!(
        status.code(),
        Some(KILL_EXIT_CODE),
        "writer child did not reach the kill point"
    );

    // Phase 2: recover in THIS process from the directory alone.
    let durable = DurableCheckpoints::new(file_store(&dir));
    let metas = durable.load_metas();
    assert_eq!(metas.len(), CHECKPOINTS as usize + 1, "persisted metas");
    let line = rollback_propagation(&CheckpointGraph::build(
        metas.values().cloned().collect(),
        &[], // single instance, no channels
    ))
    .line;
    let picked = &metas[&(InstanceIdx(0), line[&InstanceIdx(0)].index)];
    assert_eq!(
        picked.id.index, CHECKPOINTS,
        "latest checkpoint is the line"
    );
    // The last checkpoint was incremental: its manifest must chain into
    // chunks owned by earlier checkpoints.
    let manifest = picked.manifest.as_ref().expect("incremental meta");
    assert!(
        manifest.oldest_owner().unwrap() < CHECKPOINTS,
        "no chunk chain: every chunk re-uploaded?"
    );

    let state = durable.read_state(picked).expect("durable state");
    let (mut op, mut book) = decode_state(&state);

    // The restored state equals a from-scratch replay of the input...
    let mut expect_op = WindowedCountOp::new(WINDOW_NS);
    let mut expect_book = ChannelBook::new();
    drive(
        &mut expect_op,
        &mut expect_book,
        1,
        CHECKPOINTS * RECORDS_PER_CHECKPOINT,
    );
    assert_eq!(
        encode_state(&op, &book),
        encode_state(&expect_op, &expect_book)
    );

    // ... and is live: processing continues from where the child died.
    drive(
        &mut op,
        &mut book,
        CHECKPOINTS * RECORDS_PER_CHECKPOINT + 1,
        50,
    );
    drive(
        &mut expect_op,
        &mut expect_book,
        CHECKPOINTS * RECORDS_PER_CHECKPOINT + 1,
        50,
    );
    assert_eq!(
        encode_state(&op, &book),
        encode_state(&expect_op, &expect_book)
    );

    let _ = std::fs::remove_dir_all(&dir);
}

// ---------------------------------------------------------------------
// Live runtime over the file backend (single process, async uploads).
// ---------------------------------------------------------------------

struct TestStream {
    partitions: u32,
}

impl EventStream for TestStream {
    fn partitions(&self) -> u32 {
        self.partitions
    }
    fn record(&self, partition: u32, offset: u64) -> Record {
        let g = offset * self.partitions as u64 + partition as u64;
        Record::new(g % 41, Value::U64(g), 0)
    }
}

/// The live runtime with asynchronous uploads, incremental checkpoints
/// and a file-backed store: a worker kill recovers from disk to the same
/// digest as a failure-free run, and the store ends up holding durable
/// metadata a future process could restart from.
#[test]
fn live_runtime_recovers_incrementally_from_file_store() {
    let base = std::env::temp_dir().join(format!("checkmate-live-file-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&base);
    let graph = {
        let mut b = GraphBuilder::new();
        let src = b.source("src", 0, 0, Arc::new(|_| Box::new(PassThroughOp)));
        let cnt = b.op(
            "count",
            0,
            Arc::new(|_| Box::new(checkmate_dataflow::ops::KeyedCounterOp::new())),
        );
        let sink = b.sink("sink", 0, Arc::new(|_| Box::new(DigestSinkOp::new())));
        b.connect(src, cnt, EdgeKind::Shuffle);
        b.connect(cnt, sink, EdgeKind::Forward);
        b.build().unwrap()
    };
    let cfg = |dir: &str, kill: Option<u32>| LiveConfig {
        parallelism: 2,
        protocol: ProtocolKind::Uncoordinated,
        rate_per_partition: 3_000.0,
        records_per_partition: 1_200,
        checkpoint_interval: Duration::from_millis(100),
        kill_worker: kill,
        timeout: Duration::from_secs(60),
        store: Some(file_store(&base.join(dir))),
        incremental: Some(policy()),
        ..LiveConfig::default()
    };
    let streams = || -> Vec<Arc<dyn EventStream>> { vec![Arc::new(TestStream { partitions: 2 })] };

    let clean = run_live(&graph, streams(), cfg("clean", None));
    let failed_cfg = cfg("failed", Some(1));
    let failed_store = failed_cfg.store.clone().unwrap();
    let failed = run_live(&graph, streams(), failed_cfg);
    assert!(failed.recovered, "recovery did not run");
    assert_eq!(
        failed.sink_digest, clean.sink_digest,
        "live incremental recovery over the file store lost or duplicated records"
    );
    assert!(failed.checkpoints > 0);
    // Durable metadata exists alongside the chunks: enough for a future
    // process to restart from this directory alone.
    assert!(!failed_store.list("ckptmeta/").is_empty());
    assert!(!failed_store.list("ckpt/").is_empty());
    let _ = std::fs::remove_dir_all(&base);
}
