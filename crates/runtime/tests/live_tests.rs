//! Live (threaded, wall-clock) engine tests: the same exactly-once
//! guarantees as the virtual-time engine, on real threads.

use checkmate_core::ProtocolKind;
use checkmate_dataflow::ops::{DigestSinkOp, KeyedCounterOp, PassThroughOp};
use checkmate_dataflow::{EdgeKind, GraphBuilder, LogicalGraph, Record, Value};
use checkmate_runtime::{run_live, LiveConfig, LiveTiering};
use checkmate_storage::{TierPolicy, TieredProfile};
use checkmate_wal::EventStream;
use std::sync::Arc;
use std::time::Duration;

struct TestStream {
    partitions: u32,
}

impl EventStream for TestStream {
    fn partitions(&self) -> u32 {
        self.partitions
    }
    fn record(&self, partition: u32, offset: u64) -> Record {
        let g = offset * self.partitions as u64 + partition as u64;
        Record::new(g % 37, Value::U64(g), 0)
    }
}

fn counting_graph() -> LogicalGraph {
    let mut b = GraphBuilder::new();
    let src = b.source("src", 0, 0, Arc::new(|_| Box::new(PassThroughOp)));
    let cnt = b.op("count", 0, Arc::new(|_| Box::new(KeyedCounterOp::new())));
    let sink = b.sink("sink", 0, Arc::new(|_| Box::new(DigestSinkOp::new())));
    b.connect(src, cnt, EdgeKind::Shuffle);
    b.connect(cnt, sink, EdgeKind::Forward);
    b.build().unwrap()
}

fn cfg(protocol: ProtocolKind, kill: Option<u32>) -> LiveConfig {
    LiveConfig {
        parallelism: 3,
        protocol,
        rate_per_partition: 3_000.0,
        records_per_partition: 1_500,
        checkpoint_interval: Duration::from_millis(120),
        kill_worker: kill,
        timeout: Duration::from_secs(60),
        ..LiveConfig::default()
    }
}

fn streams() -> Vec<Arc<dyn EventStream>> {
    vec![Arc::new(TestStream { partitions: 3 })]
}

#[test]
fn live_failure_free_all_protocols_agree() {
    let graph = counting_graph();
    let mut digests = Vec::new();
    for p in ProtocolKind::ALL_EVALUATED {
        let r = run_live(&graph, streams(), cfg(p, None));
        assert!(
            r.sink_digest.count >= 1_500 * 3,
            "{p}: sink digest count {} (records {})",
            r.sink_digest.count,
            r.sink_records
        );
        if p != ProtocolKind::None {
            assert!(r.checkpoints > 0, "{p}: no checkpoints");
        }
        digests.push((p, r.sink_digest));
    }
    for (p, d) in &digests[1..] {
        assert_eq!(*d, digests[0].1, "{p} digest differs from baseline");
    }
}

#[test]
fn live_exactly_once_under_failure_coordinated() {
    live_exactly_once(ProtocolKind::Coordinated);
}

#[test]
fn live_exactly_once_under_failure_uncoordinated() {
    live_exactly_once(ProtocolKind::Uncoordinated);
}

#[test]
fn live_exactly_once_under_failure_cic() {
    live_exactly_once(ProtocolKind::CommunicationInduced);
}

fn live_exactly_once(protocol: ProtocolKind) {
    let graph = counting_graph();
    let clean = run_live(&graph, streams(), cfg(protocol, None));
    let failed = run_live(&graph, streams(), cfg(protocol, Some(1)));
    assert!(failed.recovered, "{protocol}: recovery did not run");
    assert_eq!(
        failed.sink_digest, clean.sink_digest,
        "{protocol}: live exactly-once violated (clean {} records, failed {})",
        clean.sink_records, failed.sink_records
    );
}

/// Satellite of the tiered-store PR: a live run checkpointing into the
/// tiered backend — with an aggressive policy so seal *and* demotion
/// passes actually fire mid-run — must recover from a worker kill to
/// the exact digest of a flat-store clean run. The compactor races the
/// uploader, the recovery restore, and the post-line discard here; any
/// eviction of a line-reachable object would corrupt the restore and
/// show up as a digest mismatch.
#[test]
fn live_tiered_store_recovers_exactly_once() {
    let graph = counting_graph();
    for protocol in [ProtocolKind::Coordinated, ProtocolKind::Uncoordinated] {
        let clean = run_live(&graph, streams(), cfg(protocol, None));
        let tiering = LiveTiering {
            tiers: TieredProfile::standard(),
            policy: TierPolicy {
                hot_capacity_bytes: 1 << 10,
                warm_retain_layers: 0,
                vacuum_dead_fraction: 0.2,
            },
            maintain_every: Duration::from_millis(10),
        };
        let tiered = run_live(
            &graph,
            streams(),
            LiveConfig {
                tiering: Some(tiering),
                ..cfg(protocol, Some(1))
            },
        );
        assert!(tiered.recovered, "{protocol}: recovery did not run");
        assert_eq!(
            tiered.sink_digest, clean.sink_digest,
            "{protocol}: tiered live recovery diverged from flat clean run \
             (clean {} records, tiered {})",
            clean.sink_records, tiered.sink_records
        );
        let t = tiered.tier.expect("tiered run must report tier stats");
        assert!(t.maintenance_runs > 0, "{protocol}: compactor never ran");
        assert!(
            t.seals > 0,
            "{protocol}: hot tier never sealed under a 1 KiB capacity \
             (hot {} bytes) — the test exercised nothing",
            t.hot.bytes
        );
    }
}

#[test]
#[should_panic(expected = "deadlocks on cyclic")]
fn live_refuses_coordinated_on_cyclic_graph() {
    // Cycle construction requires a feedback edge; use a minimal loop.
    let mut b = GraphBuilder::new();
    let src = b.source("src", 0, 0, Arc::new(|_| Box::new(PassThroughOp)));
    let a = b.op("a", 0, Arc::new(|_| Box::new(PassThroughOp)));
    let c = b.op("c", 0, Arc::new(|_| Box::new(PassThroughOp)));
    let sink = b.sink("sink", 0, Arc::new(|_| Box::new(DigestSinkOp::new())));
    b.connect(src, a, EdgeKind::Forward);
    b.connect(a, c, EdgeKind::Forward);
    b.connect_port(c, a, EdgeKind::Feedback, checkmate_dataflow::PortId(1));
    b.connect(c, sink, EdgeKind::Forward);
    let graph = b.build().unwrap();
    run_live(&graph, streams(), cfg(ProtocolKind::Coordinated, None));
}
