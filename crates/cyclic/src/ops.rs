//! Operators of the reachability query (paper Fig. 6):
//! `Join ⋈ → Select σ → Project π → (sink + feedback to join)`.

use crate::gen::{TAG_ADD, TAG_DEL};
use checkmate_dataflow::codec::{Codec, Dec, DecodeError, Enc};
use checkmate_dataflow::ids::PortId;
use checkmate_dataflow::operator::{OpCtx, Operator};
use checkmate_dataflow::record::Record;
use checkmate_dataflow::state::KeyedState;
use checkmate_dataflow::value::Value;

/// Input ports of [`ReachJoinOp`].
pub const PORT_LINKS: PortId = PortId(0);
pub const PORT_SOURCES: PortId = PortId(1);
pub const PORT_FEEDBACK: PortId = PortId(2);

/// Paths longer than this are dropped by the project operator — a safety
/// bound against path blow-up on dense graphs (the select operator's
/// cycle check already bounds paths on simple cycles).
pub const MAX_PATH: usize = 12;

/// The stateful join at the heart of the reachability query.
///
/// State (partitioned by node id):
/// - `links[u]`  — end nodes of live directed links starting at `u`;
/// - `reach[n]`  — reach records `(source, path)` currently known at
///   node `n` (from AddSource or from the feedback loop).
///
/// On every new link/reach record it joins against the other side and
/// emits `(end_node, source, path)` pairs downstream.
#[derive(Default)]
pub struct ReachJoinOp {
    links: KeyedState<Vec<Value>>,
    reach: KeyedState<Vec<Value>>,
}

impl ReachJoinOp {
    pub fn new() -> Self {
        Self::default()
    }

    pub fn live_links(&self) -> usize {
        self.links.iter().map(|(_, v)| v.len()).sum()
    }

    pub fn reach_records(&self) -> usize {
        self.reach.iter().map(|(_, v)| v.len()).sum()
    }

    fn emit_pair(ctx: &mut OpCtx, base: &Record, v: u64, source: u64, path: &Value) {
        ctx.emit(base.derive(
            v,
            Value::Tuple([Value::U64(v), Value::U64(source), path.clone()].into()),
        ));
    }
}

impl Operator for ReachJoinOp {
    fn on_record(&mut self, port: PortId, rec: Record, ctx: &mut OpCtx) {
        match port {
            PORT_LINKS => {
                let t = rec.value.as_tuple().expect("link tuple");
                let tag = t[0].as_u64().expect("tag");
                let u = t[1].as_u64().expect("u");
                let v = t[2].as_u64().expect("v");
                if tag == TAG_ADD {
                    self.links.append(u, Value::U64(v));
                    if let Some(records) = self.reach.get(u) {
                        for r in records.clone() {
                            let rt = r.as_tuple().expect("reach tuple");
                            let source = rt[0].as_u64().expect("source");
                            ReachJoinOp::emit_pair(ctx, &rec, v, source, &rt[1]);
                        }
                    }
                } else {
                    debug_assert_eq!(tag, TAG_DEL);
                    self.links.upsert(u, Vec::new, |l| {
                        if let Some(pos) = l.iter().position(|x| x.as_u64() == Some(v)) {
                            l.swap_remove(pos);
                        }
                    });
                }
            }
            PORT_SOURCES => {
                let t = rec.value.as_tuple().expect("source tuple");
                let tag = t[0].as_u64().expect("tag");
                let s = t[1].as_u64().expect("s");
                if tag == TAG_ADD {
                    let path = Value::list(vec![Value::U64(s)]);
                    self.reach
                        .append(s, Value::Tuple([Value::U64(s), path.clone()].into()));
                    if let Some(ends) = self.links.get(s) {
                        for v in ends.clone() {
                            let v = v.as_u64().expect("end node");
                            ReachJoinOp::emit_pair(ctx, &rec, v, s, &path);
                        }
                    }
                } else {
                    debug_assert_eq!(tag, TAG_DEL);
                    // Remove the original source record at node s. Derived
                    // reach records elsewhere are left in place (the paper
                    // leaves cascade deletion unspecified; see DESIGN.md).
                    self.reach.upsert(s, Vec::new, |r| {
                        r.retain(|x| {
                            let t = x.as_tuple().expect("reach tuple");
                            !(t[0].as_u64() == Some(s)
                                && t[1].as_list().is_some_and(|p| p.len() == 1))
                        });
                    });
                }
            }
            PORT_FEEDBACK => {
                // (source, node, path) arriving from the project operator.
                let t = rec.value.as_tuple().expect("feedback tuple");
                let source = t[0].as_u64().expect("source");
                let node = t[1].as_u64().expect("node");
                let path = t[2].clone();
                self.reach.append(
                    node,
                    Value::Tuple([Value::U64(source), path.clone()].into()),
                );
                if let Some(ends) = self.links.get(node) {
                    for v in ends.clone() {
                        let v = v.as_u64().expect("end node");
                        ReachJoinOp::emit_pair(ctx, &rec, v, source, &path);
                    }
                }
            }
            other => panic!("reach join: unexpected port {other}"),
        }
    }

    fn snapshot(&self) -> Vec<u8> {
        let mut enc = Enc::with_capacity(self.state_size() + 16);
        self.links.encode(&mut enc);
        self.reach.encode(&mut enc);
        enc.finish()
    }

    fn restore(&mut self, bytes: &[u8]) -> Result<(), DecodeError> {
        let mut dec = Dec::new(bytes);
        self.links = KeyedState::decode(&mut dec)?;
        self.reach = KeyedState::decode(&mut dec)?;
        dec.finish()
    }

    fn state_size(&self) -> usize {
        self.links.byte_size() + self.reach.byte_size()
    }

    fn reset(&mut self) {
        self.links.clear();
        self.reach.clear();
    }

    fn snapshot_len(&self) -> usize {
        self.links.encoded_len() + self.reach.encoded_len()
    }
}

/// σ — drop pairs whose end node already appears in the path (cycle
/// avoidance; paper: "we check if the end node ... is contained in the
/// path ... and we discard such pairs"). Stateless.
#[derive(Default)]
pub struct ReachSelectOp;

impl Operator for ReachSelectOp {
    fn on_record(&mut self, _port: PortId, rec: Record, ctx: &mut OpCtx) {
        let t = rec.value.as_tuple().expect("pair tuple");
        let v = t[0].as_u64().expect("end node");
        let in_path = t[2]
            .as_list()
            .expect("path list")
            .iter()
            .any(|x| x.as_u64() == Some(v));
        if !in_path {
            ctx.emit(rec);
        }
    }

    fn snapshot(&self) -> Vec<u8> {
        Vec::new()
    }

    fn restore(&mut self, _bytes: &[u8]) -> Result<(), DecodeError> {
        Ok(())
    }

    fn state_size(&self) -> usize {
        0
    }

    fn reset(&mut self) {}

    fn snapshot_len(&self) -> usize {
        0
    }

    fn is_stateless(&self) -> bool {
        true
    }
}

/// π — build the new reach record `(source, v, path + [v])`, output it
/// (edge 0 → sink) and feed it back (edge 1 → join). Stateless.
#[derive(Default)]
pub struct ReachProjectOp;

impl Operator for ReachProjectOp {
    fn on_record(&mut self, _port: PortId, rec: Record, ctx: &mut OpCtx) {
        let t = rec.value.as_tuple().expect("pair tuple");
        let v = t[0].as_u64().expect("end node");
        let source = t[1].as_u64().expect("source");
        let old_path = t[2].as_list().expect("path");
        if old_path.len() >= MAX_PATH {
            return;
        }
        let mut path = Vec::with_capacity(old_path.len() + 1);
        path.extend_from_slice(old_path);
        path.push(Value::U64(v));
        let reach = Value::Tuple([Value::U64(source), Value::U64(v), Value::list(path)].into());
        // Output to the sink...
        ctx.emit_to(0, rec.derive(v, reach.clone()));
        // ...and recursively back into the join, keyed by the new node.
        ctx.emit_to(1, rec.derive(v, reach));
    }

    fn snapshot(&self) -> Vec<u8> {
        Vec::new()
    }

    fn restore(&mut self, _bytes: &[u8]) -> Result<(), DecodeError> {
        Ok(())
    }

    fn state_size(&self) -> usize {
        0
    }

    fn reset(&mut self) {}

    fn snapshot_len(&self) -> usize {
        0
    }

    fn is_stateless(&self) -> bool {
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn link(tag: u64, u: u64, v: u64) -> Record {
        Record::new(
            u,
            Value::Tuple([Value::U64(tag), Value::U64(u), Value::U64(v)].into()),
            0,
        )
    }

    fn source(tag: u64, s: u64) -> Record {
        Record::new(s, Value::Tuple([Value::U64(tag), Value::U64(s)].into()), 0)
    }

    fn drive(op: &mut dyn Operator, port: PortId, rec: Record) -> Vec<(usize, Record)> {
        let mut ctx = OpCtx::new(0);
        op.on_record(port, rec, &mut ctx);
        ctx.take().0
    }

    #[test]
    fn source_then_link_joins() {
        let mut j = ReachJoinOp::new();
        assert!(drive(&mut j, PORT_SOURCES, source(TAG_ADD, 5)).is_empty());
        let out = drive(&mut j, PORT_LINKS, link(TAG_ADD, 5, 9));
        assert_eq!(out.len(), 1);
        let t = out[0].1.value.as_tuple().unwrap();
        assert_eq!(t[0].as_u64(), Some(9)); // end node
        assert_eq!(t[1].as_u64(), Some(5)); // source
    }

    #[test]
    fn link_then_source_joins() {
        let mut j = ReachJoinOp::new();
        drive(&mut j, PORT_LINKS, link(TAG_ADD, 5, 9));
        let out = drive(&mut j, PORT_SOURCES, source(TAG_ADD, 5));
        assert_eq!(out.len(), 1);
    }

    #[test]
    fn deleted_link_no_longer_joins() {
        let mut j = ReachJoinOp::new();
        drive(&mut j, PORT_LINKS, link(TAG_ADD, 5, 9));
        drive(&mut j, PORT_LINKS, link(TAG_DEL, 5, 9));
        assert!(drive(&mut j, PORT_SOURCES, source(TAG_ADD, 5)).is_empty());
        assert_eq!(j.live_links(), 0);
    }

    #[test]
    fn deleted_source_record_removed() {
        let mut j = ReachJoinOp::new();
        drive(&mut j, PORT_SOURCES, source(TAG_ADD, 5));
        drive(&mut j, PORT_SOURCES, source(TAG_DEL, 5));
        assert!(drive(&mut j, PORT_LINKS, link(TAG_ADD, 5, 9)).is_empty());
    }

    #[test]
    fn feedback_extends_reachability() {
        let mut j = ReachJoinOp::new();
        drive(&mut j, PORT_LINKS, link(TAG_ADD, 9, 12));
        // a reach record for source 5 arriving at node 9 via feedback
        let fb = Record::new(
            9,
            Value::Tuple(
                [
                    Value::U64(5),
                    Value::U64(9),
                    Value::list(vec![Value::U64(5), Value::U64(9)]),
                ]
                .into(),
            ),
            0,
        );
        let out = drive(&mut j, PORT_FEEDBACK, fb);
        assert_eq!(out.len(), 1);
        let t = out[0].1.value.as_tuple().unwrap();
        assert_eq!(t[0].as_u64(), Some(12));
    }

    #[test]
    fn select_discards_cycles() {
        let mut s = ReachSelectOp;
        let pair_cyclic = Record::new(
            5,
            Value::Tuple(
                [
                    Value::U64(5),
                    Value::U64(5),
                    Value::list(vec![Value::U64(5), Value::U64(9)]),
                ]
                .into(),
            ),
            0,
        );
        assert!(drive(&mut s, PortId(0), pair_cyclic).is_empty());
        let pair_ok = Record::new(
            7,
            Value::Tuple(
                [
                    Value::U64(7),
                    Value::U64(5),
                    Value::list(vec![Value::U64(5), Value::U64(9)]),
                ]
                .into(),
            ),
            0,
        );
        assert_eq!(drive(&mut s, PortId(0), pair_ok).len(), 1);
    }

    #[test]
    fn project_emits_output_and_feedback() {
        let mut p = ReachProjectOp;
        let pair = Record::new(
            9,
            Value::Tuple(
                [
                    Value::U64(9),
                    Value::U64(5),
                    Value::list(vec![Value::U64(5)]),
                ]
                .into(),
            ),
            0,
        );
        let out = drive(&mut p, PortId(0), pair);
        assert_eq!(out.len(), 2);
        assert_eq!(out[0].0, 0); // sink edge
        assert_eq!(out[1].0, 1); // feedback edge
        let t = out[1].1.value.as_tuple().unwrap();
        assert_eq!(t[1].as_u64(), Some(9)); // new node
        assert_eq!(t[2].as_list().unwrap().len(), 2); // path extended
        assert_eq!(out[1].1.key, 9); // routed by the new node
    }

    #[test]
    fn project_caps_path_length() {
        let mut p = ReachProjectOp;
        let long_path = Value::list((0..MAX_PATH as u64).map(Value::U64).collect::<Vec<_>>());
        let pair = Record::new(
            99,
            Value::Tuple([Value::U64(99), Value::U64(5), long_path].into()),
            0,
        );
        assert!(drive(&mut p, PortId(0), pair).is_empty());
    }

    #[test]
    fn join_snapshot_roundtrip() {
        let mut j = ReachJoinOp::new();
        drive(&mut j, PORT_LINKS, link(TAG_ADD, 5, 9));
        drive(&mut j, PORT_SOURCES, source(TAG_ADD, 5));
        let snap = j.snapshot();
        let mut fresh = ReachJoinOp::new();
        fresh.restore(&snap).unwrap();
        assert_eq!(fresh.state_size(), j.state_size());
        assert_eq!(fresh.live_links(), 1);
        assert_eq!(fresh.reach_records(), 1);
        // restored join behaves identically
        let out = drive(&mut fresh, PORT_LINKS, link(TAG_ADD, 5, 7));
        assert_eq!(out.len(), 1);
    }
}
