//! Event generator for the cyclic reachability query (paper §VI/§VII-B).
//!
//! The paper's generator "creates events with the following
//! probabilities: 60 % chance of creating a new link, 15 % of creating a
//! source node, 20 % chance of deleting an existing link, and 5 % of
//! deleting an existing source node", over "a static set of 1M nodes".
//! The query ingests two streams — links and source nodes — so we split
//! the mix into a links stream (75 % add / 25 % delete, 80 % of total
//! rate) and a sources stream (75 % add / 25 % delete, 20 % of total).
//!
//! Deletions reference events generated earlier in the same partition,
//! found deterministically so replays remain pure.

use checkmate_dataflow::{mix_key, Record, Value};
use checkmate_wal::EventStream;

/// Share of the total input rate carried by the links stream
/// ((60 + 20) / 100).
pub const LINK_SHARE: f64 = 0.8;
/// Share carried by the sources stream ((15 + 5) / 100).
pub const SOURCE_SHARE: f64 = 0.2;

/// Event tags inside the tuples.
pub const TAG_ADD: u64 = 0;
pub const TAG_DEL: u64 = 1;

fn h(seed: u64, g: u64, salt: u64) -> u64 {
    mix_key(seed ^ g.wrapping_mul(0x9E37_79B9_7F4A_7C15) ^ salt.wrapping_mul(0xA24B_AED4_963E_E407))
}

/// Directed-link events: `(tag, u, v)`, keyed by the link's start node
/// `u` (the join partitions its link state by start node).
pub struct LinkStream {
    pub partitions: u32,
    pub seed: u64,
    pub nodes: u64,
}

impl LinkStream {
    pub fn new(partitions: u32, seed: u64, nodes: u64) -> Self {
        assert!(nodes > 1);
        Self {
            partitions,
            seed,
            nodes,
        }
    }

    fn is_add(&self, partition: u32, offset: u64) -> bool {
        h(
            self.seed,
            offset * self.partitions as u64 + partition as u64,
            10,
        ) % 100
            < 75
    }

    /// The link endpoints introduced by an *add* at `offset`.
    fn link_of(&self, partition: u32, offset: u64) -> (u64, u64) {
        let g = offset * self.partitions as u64 + partition as u64;
        let u = h(self.seed, g, 11) % self.nodes;
        // v ≠ u (self-loops carry no information for reachability).
        let v = (u + 1 + h(self.seed, g, 12) % (self.nodes - 1)) % self.nodes;
        (u, v)
    }

    /// Deterministically pick an earlier add-offset to delete; falls back
    /// to add when none is found nearby.
    fn del_target(&self, partition: u32, offset: u64) -> Option<u64> {
        if offset == 0 {
            return None;
        }
        let g = offset * self.partitions as u64 + partition as u64;
        let start = h(self.seed, g, 13) % offset;
        (0..16u64)
            .map(|i| (start + i) % offset)
            .find(|&cand| self.is_add(partition, cand))
    }
}

impl EventStream for LinkStream {
    fn partitions(&self) -> u32 {
        self.partitions
    }

    fn record(&self, partition: u32, offset: u64) -> Record {
        let (tag, (u, v)) = if self.is_add(partition, offset) {
            (TAG_ADD, self.link_of(partition, offset))
        } else {
            match self.del_target(partition, offset) {
                Some(cand) => (TAG_DEL, self.link_of(partition, cand)),
                None => (TAG_ADD, self.link_of(partition, offset)),
            }
        };
        Record::new(
            u,
            Value::Tuple([Value::U64(tag), Value::U64(u), Value::U64(v)].into()),
            0,
        )
    }
}

/// Source-node events: `(tag, s)`, keyed by the node `s`.
pub struct SourceNodeStream {
    pub partitions: u32,
    pub seed: u64,
    pub nodes: u64,
}

impl SourceNodeStream {
    pub fn new(partitions: u32, seed: u64, nodes: u64) -> Self {
        assert!(nodes > 0);
        Self {
            partitions,
            seed,
            nodes,
        }
    }

    fn is_add(&self, partition: u32, offset: u64) -> bool {
        h(
            self.seed,
            offset * self.partitions as u64 + partition as u64,
            20,
        ) % 100
            < 75
    }

    fn node_of(&self, partition: u32, offset: u64) -> u64 {
        let g = offset * self.partitions as u64 + partition as u64;
        h(self.seed, g, 21) % self.nodes
    }

    fn del_target(&self, partition: u32, offset: u64) -> Option<u64> {
        if offset == 0 {
            return None;
        }
        let g = offset * self.partitions as u64 + partition as u64;
        let start = h(self.seed, g, 22) % offset;
        (0..16u64)
            .map(|i| (start + i) % offset)
            .find(|&cand| self.is_add(partition, cand))
    }
}

impl EventStream for SourceNodeStream {
    fn partitions(&self) -> u32 {
        self.partitions
    }

    fn record(&self, partition: u32, offset: u64) -> Record {
        let (tag, s) = if self.is_add(partition, offset) {
            (TAG_ADD, self.node_of(partition, offset))
        } else {
            match self.del_target(partition, offset) {
                Some(cand) => (TAG_DEL, self.node_of(partition, cand)),
                None => (TAG_ADD, self.node_of(partition, offset)),
            }
        };
        Record::new(s, Value::Tuple([Value::U64(tag), Value::U64(s)].into()), 0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn streams_are_pure() {
        let l = LinkStream::new(4, 9, 1000);
        let s = SourceNodeStream::new(4, 9, 1000);
        for off in [0u64, 7, 321] {
            assert_eq!(l.record(1, off), l.record(1, off));
            assert_eq!(s.record(2, off), s.record(2, off));
        }
    }

    #[test]
    fn event_mix_roughly_75_25() {
        let l = LinkStream::new(1, 9, 1_000_000);
        let n = 4_000u64;
        let adds = (0..n)
            .filter(|&o| l.record(0, o).value.field(0).as_u64() == Some(TAG_ADD))
            .count();
        let ratio = adds as f64 / n as f64;
        assert!((0.70..0.85).contains(&ratio), "add ratio {ratio}");
    }

    #[test]
    fn deletes_reference_previously_added_links() {
        let l = LinkStream::new(2, 9, 10_000);
        let mut added = std::collections::HashSet::new();
        for off in 0..2_000u64 {
            let rec = l.record(0, off);
            let t = rec.value.as_tuple().unwrap();
            let (tag, u, v) = (
                t[0].as_u64().unwrap(),
                t[1].as_u64().unwrap(),
                t[2].as_u64().unwrap(),
            );
            if tag == TAG_ADD {
                added.insert((u, v));
            } else {
                assert!(
                    added.contains(&(u, v)),
                    "delete at {off} references unknown link ({u},{v})"
                );
            }
        }
    }

    #[test]
    fn no_self_loops() {
        let l = LinkStream::new(1, 3, 50);
        for off in 0..500u64 {
            let rec = l.record(0, off);
            let t = rec.value.as_tuple().unwrap();
            assert_ne!(t[1], t[2], "self-loop at {off}");
        }
    }

    #[test]
    fn key_is_start_node() {
        let l = LinkStream::new(1, 3, 100);
        for off in 0..100u64 {
            let rec = l.record(0, off);
            assert_eq!(Some(rec.key), rec.value.field(1).as_u64());
        }
    }

    #[test]
    fn shares_sum_to_one() {
        assert!((LINK_SHARE + SOURCE_SHARE - 1.0).abs() < 1e-12);
    }
}
