//! # checkmate-cyclic
//!
//! The cyclic reachability streaming query of the paper's evaluation
//! (§VI, adapted from Chandramouli et al.'s FFP reachability query):
//! temporal directed links and source nodes stream in; the query
//! maintains all paths reachable from live source nodes, feeding newly
//! derived reach records back into the join through a feedback edge —
//! the dataflow cycle that the aligned coordinated protocol cannot
//! checkpoint (it deadlocks; §VII-B), and that historically threatens
//! uncoordinated checkpointing with the domino effect.

pub mod gen;
pub mod ops;
pub mod query;

pub use gen::{LinkStream, SourceNodeStream, LINK_SHARE, SOURCE_SHARE, TAG_ADD, TAG_DEL};
pub use ops::{
    ReachJoinOp, ReachProjectOp, ReachSelectOp, MAX_PATH, PORT_FEEDBACK, PORT_LINKS, PORT_SOURCES,
};
pub use query::{reachability, DEFAULT_NODES};
