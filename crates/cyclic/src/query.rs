//! The reachability query workload (paper Fig. 6): two sources feed a
//! stateful join whose derived results loop back through
//! select → project → feedback.

use crate::gen::{LinkStream, SourceNodeStream, LINK_SHARE, SOURCE_SHARE};
use crate::ops::{
    ReachJoinOp, ReachProjectOp, ReachSelectOp, PORT_FEEDBACK, PORT_LINKS, PORT_SOURCES,
};
use checkmate_dataflow::ops::{DigestSinkOp, PassThroughOp};
use checkmate_dataflow::{EdgeKind, GraphBuilder};
use checkmate_engine::workload::{StreamSpec, Workload};
use std::sync::Arc;

/// Size of the static node universe (paper: 1 M nodes).
pub const DEFAULT_NODES: u64 = 1_000_000;

/// Build the cyclic reachability workload.
pub fn reachability(parallelism: u32, seed: u64, nodes: u64) -> Workload {
    let mut b = GraphBuilder::new();
    let links = b.source("links", 0, 120_000, Arc::new(|_| Box::new(PassThroughOp)));
    let sources = b.source("sources", 1, 120_000, Arc::new(|_| Box::new(PassThroughOp)));
    let join = b.op("join", 320_000, Arc::new(|_| Box::new(ReachJoinOp::new())));
    let select = b.op(
        "select",
        140_000,
        Arc::new(|_| Box::<ReachSelectOp>::default()),
    );
    let project = b.op(
        "project",
        160_000,
        Arc::new(|_| Box::<ReachProjectOp>::default()),
    );
    let sink = b.sink("sink", 90_000, Arc::new(|_| Box::new(DigestSinkOp::new())));
    b.connect_port(links, join, EdgeKind::Shuffle, PORT_LINKS);
    b.connect_port(sources, join, EdgeKind::Shuffle, PORT_SOURCES);
    b.connect(join, select, EdgeKind::Forward);
    b.connect(select, project, EdgeKind::Forward);
    // project edge 0 → sink, edge 1 → feedback into the join.
    b.connect(project, sink, EdgeKind::Forward);
    b.connect_port(project, join, EdgeKind::Feedback, PORT_FEEDBACK);
    Workload {
        name: "reachability".into(),
        graph: b.build().expect("cyclic graph"),
        streams: vec![
            StreamSpec {
                stream: Arc::new(LinkStream::new(parallelism, seed, nodes)),
                rate_share: LINK_SHARE,
            },
            StreamSpec {
                stream: Arc::new(SourceNodeStream::new(parallelism, seed, nodes)),
                rate_share: SOURCE_SHARE,
            },
        ],
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builds_as_cyclic_graph() {
        let wl = reachability(4, 9, 10_000);
        wl.validate(4);
        assert!(wl.graph.is_cyclic());
        assert_eq!(wl.graph.sources().count(), 2);
        assert_eq!(wl.graph.ops().len(), 6);
        let feedback = wl
            .graph
            .edges()
            .iter()
            .filter(|e| e.kind == EdgeKind::Feedback)
            .count();
        assert_eq!(feedback, 1);
    }
}
