//! The order-sensitive cyclic reachability query, live, with a worker
//! kill — digest-checked against the virtual-time engine oracle.
//!
//! The workload is non-confluent: a link DELETE racing a source ADD (or
//! a feedback reach record) changes what gets emitted, so digest
//! equality is only meaningful when both executions deliver records in
//! the same order. The test pins that order:
//!
//! - `parallelism = 1`: no cross-worker races; every channel is local.
//! - tie-free schedule: stream rate shares 103/150 and 47/150 are
//!   coprime, so no two records (past the commuting ADD/ADD pair at
//!   t = 0) are ever due at the same instant, and the live runtime's
//!   schedule-order merge polling reproduces the engine's virtual-time
//!   order.
//! - `strict_source_order`: each record's cascade — feedback loop
//!   included — drains completely before the next record is admitted,
//!   even when the post-recovery wall-clock backlog collapses the
//!   inter-arrival spacing.
//! - `source_batch = 0` on the engine so records become readable at
//!   their exact schedule instants rather than in 100 ms batches.
//!
//! Under message-logging protocols the killed run replays the channel
//! logs in determinant order, so the pre-crash interleaving — including
//! DELETE/ADD races already decided — is reproduced bit-for-bit, and
//! the sink digest (a commutative multiset hash) must match the clean
//! live run and the engine oracle exactly.

use checkmate_core::ProtocolKind;
use checkmate_cyclic::gen::{LinkStream, SourceNodeStream};
use checkmate_cyclic::reachability;
use checkmate_dataflow::ops::Digest;
use checkmate_engine::config::EngineConfig;
use checkmate_engine::engine::Engine;
use checkmate_engine::report::Outcome;
use checkmate_engine::workload::{StreamSpec, Workload};
use checkmate_runtime::{run_live, LiveConfig};
use checkmate_sim::SECONDS;
use checkmate_wal::EventStream;
use std::sync::Arc;
use std::time::Duration;

const SEED: u64 = 21;
const NODES: u64 = 500;
const LIMIT: u64 = 64;
const TOTAL_RATE: f64 = 75.0;
// Coprime-share split (103 + 47 = 150): cross-stream due-times first
// coincide at link offset 103 > LIMIT, so the merged order is tie-free.
const LINK_SHARE: f64 = 103.0 / 150.0;
const SOURCE_SHARE: f64 = 47.0 / 150.0;

/// The reachability graph with the tie-free rate split.
fn workload() -> Workload {
    let base = reachability(1, SEED, NODES);
    Workload {
        name: "reach-oracle".into(),
        graph: base.graph,
        streams: vec![
            StreamSpec {
                stream: Arc::new(LinkStream::new(1, SEED, NODES)),
                rate_share: LINK_SHARE,
            },
            StreamSpec {
                stream: Arc::new(SourceNodeStream::new(1, SEED, NODES)),
                rate_share: SOURCE_SHARE,
            },
        ],
    }
}

fn engine_digest(protocol: ProtocolKind) -> Digest {
    let wl = workload();
    let r = Engine::new(
        &wl,
        EngineConfig {
            parallelism: 1,
            protocol,
            total_rate: TOTAL_RATE,
            checkpoint_interval: SECONDS,
            duration: 60 * SECONDS,
            warmup: SECONDS,
            input_limit: Some(LIMIT),
            source_batch: 0,
            checkpoint_retention: u64::MAX,
            ..EngineConfig::default()
        },
    )
    .run();
    assert_eq!(r.outcome, Outcome::Drained, "engine: {}", r.summary());
    assert!(r.sink_records > 0, "engine produced no output");
    r.sink_digest
}

fn live_digest(protocol: ProtocolKind, kill: Option<u32>) -> Digest {
    let wl = workload();
    let streams: Vec<Arc<dyn EventStream>> =
        wl.streams.iter().map(|s| Arc::clone(&s.stream)).collect();
    let r = run_live(
        &wl.graph,
        streams,
        LiveConfig {
            parallelism: 1,
            protocol,
            // The engine's per-partition rate formula, verbatim.
            stream_rates: vec![TOTAL_RATE * LINK_SHARE, TOTAL_RATE * SOURCE_SHARE],
            records_per_partition: LIMIT,
            checkpoint_interval: Duration::from_millis(300),
            kill_worker: kill,
            timeout: Duration::from_secs(60),
            strict_source_order: true,
            ..LiveConfig::default()
        },
    );
    if kill.is_some() {
        assert!(r.recovered, "{protocol:?}: kill was scripted");
    }
    assert!(
        r.determinants > 0,
        "{protocol:?}: message-logging protocols record delivery order"
    );
    assert!(
        r.sink_records > 0,
        "{protocol:?}: no output ({})",
        r.summary()
    );
    r.sink_digest
}

#[test]
fn cyclic_live_kill_recovery_matches_engine_oracle() {
    for protocol in [
        ProtocolKind::Uncoordinated,
        ProtocolKind::CommunicationInduced,
        ProtocolKind::CommunicationInducedBcs,
    ] {
        let oracle = engine_digest(protocol);
        let clean = live_digest(protocol, None);
        assert_eq!(
            oracle, clean,
            "{protocol:?}: clean live run diverged from the engine oracle"
        );
        let killed = live_digest(protocol, Some(0));
        assert_eq!(
            oracle, killed,
            "{protocol:?}: killed live run diverged from the engine oracle"
        );
    }
}
