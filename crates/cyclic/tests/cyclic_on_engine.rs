//! The cyclic reachability query on the engine: UNC/CIC checkpoint it
//! fine (and recover exactly-once); the aligned coordinated protocol
//! deadlocks — the dynamic demonstration of the paper's §VII-B claim.

use checkmate_core::ProtocolKind;
use checkmate_cyclic::reachability;
use checkmate_dataflow::WorkerId;
use checkmate_engine::config::{EngineConfig, FailureSpec};
use checkmate_engine::engine::Engine;
use checkmate_engine::report::Outcome;
use checkmate_sim::SECONDS;

fn cfg(parallelism: u32, protocol: ProtocolKind) -> EngineConfig {
    EngineConfig {
        parallelism,
        protocol,
        // The feedback loop amplifies input records into derived reach
        // records, so the sustainable input rate is well below the
        // acyclic queries'. The paper runs at 75–80 % of MST; overloading
        // the loop genuinely produces a domino (deep rollbacks), which is
        // out of the evaluated envelope.
        total_rate: 180.0 * parallelism as f64,
        checkpoint_interval: 2 * SECONDS,
        duration: 12 * SECONDS,
        warmup: 4 * SECONDS,
        ..EngineConfig::default()
    }
}

#[test]
fn unc_and_cic_run_the_cyclic_query() {
    for p in [
        ProtocolKind::Uncoordinated,
        ProtocolKind::CommunicationInduced,
        ProtocolKind::CommunicationInducedBcs,
    ] {
        let wl = reachability(3, 13, 50_000);
        let r = Engine::new(&wl, cfg(3, p)).run();
        assert_eq!(r.outcome, Outcome::Completed, "{p}: {}", r.summary());
        assert!(
            r.sink_records > 20,
            "{p}: no reach outputs ({})",
            r.summary()
        );
        assert!(r.checkpoints_total > 0, "{p}: no checkpoints");
    }
}

#[test]
fn coordinated_deadlocks_on_the_cycle() {
    // "At least one operator would be waiting for a marker that
    // originates from itself, thus leading to a deadlock" (§VII-B).
    let wl = reachability(3, 13, 50_000);
    let r = Engine::new(&wl, cfg(3, ProtocolKind::Coordinated)).run();
    assert!(
        matches!(r.outcome, Outcome::CoordinatedDeadlock { .. }),
        "expected marker deadlock, got {:?} ({})",
        r.outcome,
        r.summary()
    );
    assert_eq!(r.rounds_completed, 0);
}

#[test]
fn cyclic_exactly_once_under_failure_unc_and_cic() {
    for p in [
        ProtocolKind::Uncoordinated,
        ProtocolKind::CommunicationInduced,
    ] {
        let bounded = |fail: bool| EngineConfig {
            input_limit: Some(600),
            duration: 60 * SECONDS,
            failure: fail.then_some(FailureSpec {
                at: 2 * SECONDS,
                worker: WorkerId(0),
            }),
            ..cfg(3, p)
        };
        let wl = || reachability(3, 13, 20_000);
        let clean = Engine::new(&wl(), bounded(false)).run();
        let failed = Engine::new(&wl(), bounded(true)).run();
        assert_eq!(clean.outcome, Outcome::Drained, "{p}: {}", clean.summary());
        assert_eq!(
            failed.outcome,
            Outcome::Drained,
            "{p}: {}",
            failed.summary()
        );
        assert_eq!(
            failed.sink_digest,
            clean.sink_digest,
            "{p}: cyclic exactly-once violated\nclean:  {}\nfailed: {}",
            clean.summary(),
            failed.summary()
        );
        assert!(failed.restart_time_ns.is_some());
    }
}

#[test]
fn no_domino_effect_on_the_cyclic_query() {
    // Paper Table IV: invalid checkpoint percentages stay low (~1.4–1.7 %)
    // even for UNC on the cyclic query — no domino effect in practice.
    // This depends on the paper's sparse configuration (a static set of
    // 1 M nodes): feedback traffic per channel pair is then sparse enough
    // that orphan chains cannot wrap the cycle at every checkpoint level.
    // (On a dense graph the theoretical domino is real — see
    // `domino_is_real_on_dense_cycles`.)
    let mut config = cfg(3, ProtocolKind::Uncoordinated);
    config.failure = Some(FailureSpec {
        at: 9 * SECONDS,
        worker: WorkerId(1),
    });
    let r = Engine::new(
        &reachability(3, 13, checkmate_cyclic::DEFAULT_NODES),
        config,
    )
    .run();
    assert!(
        r.checkpoints_total > 0,
        "need checkpoints to judge: {}",
        r.summary()
    );
    // With ~4 completed intervals per instance, a domino would invalidate
    // several checkpoints per instance; we assert far less than that.
    assert!(
        (r.checkpoints_invalid as f64) < 0.34 * r.checkpoints_total as f64,
        "domino-like rollback: {} invalid of {} ({})",
        r.checkpoints_invalid,
        r.checkpoints_total,
        r.summary()
    );
}

#[test]
fn domino_is_real_on_dense_cycles() {
    // The flip side — and the reason the literature feared cyclic queries
    // (paper Fig. 5): when the feedback loop carries continuous traffic,
    // uncoordinated checkpoints on a cycle invalidate each other level by
    // level, and recovery rolls deep. We demonstrate it with a dense node
    // universe. (CIC exists to prevent exactly this; see Table IV bench.)
    let mut config = cfg(3, ProtocolKind::Uncoordinated);
    config.failure = Some(FailureSpec {
        at: 9 * SECONDS,
        worker: WorkerId(1),
    });
    let r = Engine::new(&reachability(3, 13, 3_000), config).run();
    assert!(
        r.checkpoints_invalid >= r.checkpoints_total / 4,
        "expected a deep rollback on the dense cycle: {} invalid of {} ({})",
        r.checkpoints_invalid,
        r.checkpoints_total,
        r.summary()
    );
}

#[test]
fn batched_data_plane_matches_per_message_plane_on_cyclic() {
    // The cyclic join is order-sensitive (a deletion overtaking the
    // record it joins with changes the output), so it is the sharpest
    // oracle that batched arrivals preserve event-level ordering —
    // including under a failure, where replay also ships in batches.
    for p in [
        ProtocolKind::Uncoordinated,
        ProtocolKind::CommunicationInduced,
    ] {
        let bounded = |fail: bool, batched: bool| EngineConfig {
            input_limit: Some(600),
            duration: 60 * SECONDS,
            data_batching: batched,
            failure: fail.then_some(FailureSpec {
                at: 2 * SECONDS,
                worker: WorkerId(0),
            }),
            ..cfg(3, p)
        };
        let wl = || reachability(3, 13, 20_000);
        for fail in [false, true] {
            let batched = Engine::new(&wl(), bounded(fail, true)).run();
            let plain = Engine::new(&wl(), bounded(fail, false)).run();
            assert_eq!(
                batched.sink_digest,
                plain.sink_digest,
                "{p} fail={fail}: digests diverged\nbatched: {}\nplain:   {}",
                batched.summary(),
                plain.summary()
            );
            assert_eq!(batched.end_time, plain.end_time, "{p} fail={fail}");
            assert_eq!(batched.sink_records, plain.sink_records, "{p} fail={fail}");
            assert_eq!(batched.p99_ns, plain.p99_ns, "{p} fail={fail}");
        }
    }
}
