//! Identifier types shared across the workspace.
//!
//! The physical layout follows the CheckMate testbed (paper §IV/§VII-A):
//! a pipeline of logical operators is expanded by a parallelism `p`, and
//! worker `w` hosts parallel instance `w` of *every* logical operator.

use serde::{Deserialize, Serialize};
use std::fmt;

/// A worker node. Workers are numbered `0..parallelism`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct WorkerId(pub u32);

/// A logical operator in the dataflow graph.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct OpId(pub u32);

/// A physical operator instance: logical operator + parallel index.
///
/// With the one-instance-per-worker placement, `index` is also the
/// [`WorkerId`] hosting the instance.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct InstanceId {
    pub op: OpId,
    pub index: u32,
}

impl InstanceId {
    pub const fn new(op: OpId, index: u32) -> Self {
        Self { op, index }
    }

    /// The worker hosting this instance under the testbed placement.
    pub const fn worker(&self) -> WorkerId {
        WorkerId(self.index)
    }
}

/// A directed communication channel between two operator instances.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct ChannelId {
    pub from: InstanceId,
    pub to: InstanceId,
}

impl ChannelId {
    pub const fn new(from: InstanceId, to: InstanceId) -> Self {
        Self { from, to }
    }

    /// True when source and destination live on the same worker, i.e. the
    /// message never crosses the (simulated) network.
    pub fn is_local(&self) -> bool {
        self.from.worker() == self.to.worker()
    }
}

/// Input port of an operator. Multi-input operators (joins) distinguish
/// their inputs by port; single-input operators use port 0.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct PortId(pub u8);

impl PortId {
    pub const LEFT: PortId = PortId(0);
    pub const RIGHT: PortId = PortId(1);
}

impl fmt::Display for WorkerId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "w{}", self.0)
    }
}

impl fmt::Display for OpId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "op{}", self.0)
    }
}

impl fmt::Display for InstanceId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}[{}]", self.op, self.index)
    }
}

impl fmt::Display for ChannelId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}->{}", self.from, self.to)
    }
}

impl fmt::Display for PortId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "p{}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn instance_worker_placement() {
        let inst = InstanceId::new(OpId(3), 7);
        assert_eq!(inst.worker(), WorkerId(7));
    }

    #[test]
    fn channel_locality() {
        let a = InstanceId::new(OpId(0), 1);
        let b = InstanceId::new(OpId(1), 1);
        let c = InstanceId::new(OpId(1), 2);
        assert!(ChannelId::new(a, b).is_local());
        assert!(!ChannelId::new(a, c).is_local());
    }

    #[test]
    fn display_forms() {
        let ch = ChannelId::new(InstanceId::new(OpId(0), 1), InstanceId::new(OpId(2), 3));
        assert_eq!(ch.to_string(), "op0[1]->op2[3]");
        assert_eq!(WorkerId(4).to_string(), "w4");
        assert_eq!(PortId::RIGHT.to_string(), "p1");
    }

    #[test]
    fn ordering_is_stable() {
        let mut v = vec![
            InstanceId::new(OpId(1), 0),
            InstanceId::new(OpId(0), 1),
            InstanceId::new(OpId(0), 0),
        ];
        v.sort();
        assert_eq!(
            v,
            vec![
                InstanceId::new(OpId(0), 0),
                InstanceId::new(OpId(0), 1),
                InstanceId::new(OpId(1), 0),
            ]
        );
    }
}
