//! A tiny deterministic binary codec used for operator state snapshots and
//! record payload size accounting.
//!
//! The engine charges CPU time proportional to encoded byte counts
//! (serialization is a first-order cost in the paper's testbed), so every
//! encodable entity must have a well-defined, stable encoding. We use an
//! explicit little-endian format instead of a serde backend so that sizes
//! are predictable and the format is identical across platforms.

use std::fmt;

/// Error returned when decoding malformed snapshot bytes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DecodeError {
    pub context: &'static str,
    pub offset: usize,
}

impl fmt::Display for DecodeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "decode error at byte {}: {}", self.offset, self.context)
    }
}

impl std::error::Error for DecodeError {}

/// Append-only encoder over a byte buffer.
#[derive(Debug, Default)]
pub struct Enc {
    buf: Vec<u8>,
}

impl Enc {
    pub fn new() -> Self {
        Self { buf: Vec::new() }
    }

    pub fn with_capacity(cap: usize) -> Self {
        Self {
            buf: Vec::with_capacity(cap),
        }
    }

    pub fn u8(&mut self, v: u8) -> &mut Self {
        self.buf.push(v);
        self
    }

    pub fn u32(&mut self, v: u32) -> &mut Self {
        self.buf.extend_from_slice(&v.to_le_bytes());
        self
    }

    pub fn u64(&mut self, v: u64) -> &mut Self {
        self.buf.extend_from_slice(&v.to_le_bytes());
        self
    }

    pub fn i64(&mut self, v: i64) -> &mut Self {
        self.buf.extend_from_slice(&v.to_le_bytes());
        self
    }

    pub fn f64(&mut self, v: f64) -> &mut Self {
        self.buf.extend_from_slice(&v.to_le_bytes());
        self
    }

    pub fn bool(&mut self, v: bool) -> &mut Self {
        self.u8(v as u8)
    }

    /// Length-prefixed byte slice.
    pub fn bytes(&mut self, v: &[u8]) -> &mut Self {
        self.u32(v.len() as u32);
        self.buf.extend_from_slice(v);
        self
    }

    /// Length-prefixed UTF-8 string.
    pub fn str(&mut self, v: &str) -> &mut Self {
        self.bytes(v.as_bytes())
    }

    pub fn len(&self) -> usize {
        self.buf.len()
    }

    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    pub fn finish(self) -> Vec<u8> {
        self.buf
    }
}

/// Cursor-based decoder matching [`Enc`].
#[derive(Debug)]
pub struct Dec<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Dec<'a> {
    pub fn new(buf: &'a [u8]) -> Self {
        Self { buf, pos: 0 }
    }

    fn take(&mut self, n: usize, context: &'static str) -> Result<&'a [u8], DecodeError> {
        if self.pos + n > self.buf.len() {
            return Err(DecodeError {
                context,
                offset: self.pos,
            });
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    pub fn u8(&mut self) -> Result<u8, DecodeError> {
        Ok(self.take(1, "u8")?[0])
    }

    pub fn u32(&mut self) -> Result<u32, DecodeError> {
        let s = self.take(4, "u32")?;
        Ok(u32::from_le_bytes(s.try_into().unwrap()))
    }

    pub fn u64(&mut self) -> Result<u64, DecodeError> {
        let s = self.take(8, "u64")?;
        Ok(u64::from_le_bytes(s.try_into().unwrap()))
    }

    pub fn i64(&mut self) -> Result<i64, DecodeError> {
        let s = self.take(8, "i64")?;
        Ok(i64::from_le_bytes(s.try_into().unwrap()))
    }

    pub fn f64(&mut self) -> Result<f64, DecodeError> {
        let s = self.take(8, "f64")?;
        Ok(f64::from_le_bytes(s.try_into().unwrap()))
    }

    pub fn bool(&mut self) -> Result<bool, DecodeError> {
        Ok(self.u8()? != 0)
    }

    pub fn bytes(&mut self) -> Result<&'a [u8], DecodeError> {
        let n = self.u32()? as usize;
        self.take(n, "bytes body")
    }

    pub fn str(&mut self) -> Result<&'a str, DecodeError> {
        let raw = self.bytes()?;
        std::str::from_utf8(raw).map_err(|_| DecodeError {
            context: "invalid utf8",
            offset: self.pos,
        })
    }

    /// Remaining undecoded bytes.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// Asserts that the buffer was fully consumed.
    pub fn finish(self) -> Result<(), DecodeError> {
        if self.remaining() == 0 {
            Ok(())
        } else {
            Err(DecodeError {
                context: "trailing bytes",
                offset: self.pos,
            })
        }
    }
}

/// Types that can round-trip through the snapshot codec.
pub trait Codec: Sized {
    fn encode(&self, enc: &mut Enc);
    fn decode(dec: &mut Dec<'_>) -> Result<Self, DecodeError>;

    /// Exact (or lower-bound) encoded size, used by [`Codec::to_bytes`]
    /// to allocate the output buffer once instead of growing it per
    /// field. 0 (the default) means "unknown" and falls back to an empty
    /// buffer that grows on demand.
    fn encoded_len_hint(&self) -> usize {
        0
    }

    fn to_bytes(&self) -> Vec<u8> {
        let mut enc = Enc::with_capacity(self.encoded_len_hint());
        self.encode(&mut enc);
        enc.finish()
    }

    fn from_bytes(bytes: &[u8]) -> Result<Self, DecodeError> {
        let mut dec = Dec::new(bytes);
        let v = Self::decode(&mut dec)?;
        dec.finish()?;
        Ok(v)
    }
}

impl Codec for u64 {
    fn encode(&self, enc: &mut Enc) {
        enc.u64(*self);
    }
    fn decode(dec: &mut Dec<'_>) -> Result<Self, DecodeError> {
        dec.u64()
    }
}

impl Codec for i64 {
    fn encode(&self, enc: &mut Enc) {
        enc.i64(*self);
    }
    fn decode(dec: &mut Dec<'_>) -> Result<Self, DecodeError> {
        dec.i64()
    }
}

impl Codec for String {
    fn encode(&self, enc: &mut Enc) {
        enc.str(self);
    }
    fn decode(dec: &mut Dec<'_>) -> Result<Self, DecodeError> {
        Ok(dec.str()?.to_owned())
    }
}

impl<A: Codec, B: Codec> Codec for (A, B) {
    fn encode(&self, enc: &mut Enc) {
        self.0.encode(enc);
        self.1.encode(enc);
    }
    fn decode(dec: &mut Dec<'_>) -> Result<Self, DecodeError> {
        Ok((A::decode(dec)?, B::decode(dec)?))
    }
}

impl<T: Codec> Codec for Vec<T> {
    fn encode(&self, enc: &mut Enc) {
        enc.u32(self.len() as u32);
        for item in self {
            item.encode(enc);
        }
    }
    fn decode(dec: &mut Dec<'_>) -> Result<Self, DecodeError> {
        let n = dec.u32()? as usize;
        let mut v = Vec::with_capacity(n.min(1 << 20));
        for _ in 0..n {
            v.push(T::decode(dec)?);
        }
        Ok(v)
    }
}

impl<K: Codec + Ord, V: Codec> Codec for std::collections::BTreeMap<K, V> {
    fn encode(&self, enc: &mut Enc) {
        enc.u32(self.len() as u32);
        for (k, v) in self {
            k.encode(enc);
            v.encode(enc);
        }
    }
    fn decode(dec: &mut Dec<'_>) -> Result<Self, DecodeError> {
        let n = dec.u32()? as usize;
        let mut m = Self::new();
        for _ in 0..n {
            let k = K::decode(dec)?;
            let v = V::decode(dec)?;
            m.insert(k, v);
        }
        Ok(m)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeMap;

    #[test]
    fn scalar_roundtrip() {
        let mut enc = Enc::new();
        enc.u8(7).u32(42).u64(u64::MAX).i64(-5).f64(1.5).bool(true);
        enc.str("hello").bytes(&[1, 2, 3]);
        let buf = enc.finish();
        let mut dec = Dec::new(&buf);
        assert_eq!(dec.u8().unwrap(), 7);
        assert_eq!(dec.u32().unwrap(), 42);
        assert_eq!(dec.u64().unwrap(), u64::MAX);
        assert_eq!(dec.i64().unwrap(), -5);
        assert_eq!(dec.f64().unwrap(), 1.5);
        assert!(dec.bool().unwrap());
        assert_eq!(dec.str().unwrap(), "hello");
        assert_eq!(dec.bytes().unwrap(), &[1, 2, 3]);
        dec.finish().unwrap();
    }

    #[test]
    fn decode_error_on_truncation() {
        let buf = 12345u64.to_bytes();
        let mut dec = Dec::new(&buf[..4]);
        assert!(dec.u64().is_err());
    }

    #[test]
    fn decode_error_on_trailing() {
        let mut buf = 12345u64.to_bytes();
        buf.push(0);
        assert!(u64::from_bytes(&buf).is_err());
    }

    #[test]
    fn container_roundtrip() {
        let v: Vec<(u64, String)> = vec![(1, "a".into()), (2, "bb".into())];
        let bytes = v.to_bytes();
        assert_eq!(Vec::<(u64, String)>::from_bytes(&bytes).unwrap(), v);

        let mut m = BTreeMap::new();
        m.insert(9u64, "nine".to_string());
        m.insert(1u64, "one".to_string());
        let bytes = m.to_bytes();
        assert_eq!(BTreeMap::<u64, String>::from_bytes(&bytes).unwrap(), m);
    }

    #[test]
    fn map_encoding_is_deterministic() {
        // BTreeMap iterates in key order regardless of insertion order.
        let mut a = BTreeMap::new();
        a.insert(2u64, 20u64);
        a.insert(1u64, 10u64);
        let mut b = BTreeMap::new();
        b.insert(1u64, 10u64);
        b.insert(2u64, 20u64);
        assert_eq!(a.to_bytes(), b.to_bytes());
    }

    #[test]
    fn invalid_utf8_rejected() {
        let mut enc = Enc::new();
        enc.bytes(&[0xff, 0xfe]);
        let buf = enc.finish();
        let mut dec = Dec::new(&buf);
        assert!(dec.str().is_err());
    }
}
