//! Processing-time tumbling-window operators in the paper's "running"
//! form: processing is triggered on record arrival and the window content
//! is cleaned when the window expires (paper §VI, Q8 and Q12).

use crate::codec::{Codec, Dec, DecodeError, Enc};
use crate::ids::PortId;
use crate::operator::{OpCtx, Operator};
use crate::record::{Record, Time};
use crate::state::KeyedState;
use crate::value::Value;

/// Windowed symmetric hash join over processing-time tumbling windows
/// (NexMark Q8: new persons ⋈ new auctions within the same window).
pub struct WindowJoinOp {
    window_ns: u64,
    current_window: u64,
    left: KeyedState<Vec<Value>>,
    right: KeyedState<Vec<Value>>,
}

impl WindowJoinOp {
    pub fn new(window_ns: u64) -> Self {
        assert!(window_ns > 0);
        Self {
            window_ns,
            current_window: 0,
            left: KeyedState::new(),
            right: KeyedState::new(),
        }
    }

    fn roll(&mut self, now: Time) {
        let w = now / self.window_ns;
        if w != self.current_window {
            // Tumble: the previous window expires; running semantics have
            // already emitted its results, so just drop the state.
            self.left.clear();
            self.right.clear();
            self.current_window = w;
        }
    }

    pub fn window_ns(&self) -> u64 {
        self.window_ns
    }
}

impl Operator for WindowJoinOp {
    fn on_record(&mut self, port: PortId, rec: Record, ctx: &mut OpCtx) {
        self.roll(ctx.now);
        let key = rec.key;
        if port == PortId::LEFT {
            self.left.append(key, rec.value.clone());
            if let Some(matches) = self.right.get(key) {
                for rv in matches {
                    ctx.emit(rec.derive(key, Value::Tuple([rec.value.clone(), rv.clone()].into())));
                }
            }
        } else {
            self.right.append(key, rec.value.clone());
            if let Some(matches) = self.left.get(key) {
                for lv in matches {
                    ctx.emit(rec.derive(key, Value::Tuple([lv.clone(), rec.value.clone()].into())));
                }
            }
        }
        // Ask for a cleanup timer at the window boundary so state is
        // released even if no further records arrive.
        ctx.set_timer((self.current_window + 1) * self.window_ns);
    }

    fn on_timer(&mut self, at: Time, _ctx: &mut OpCtx) {
        self.roll(at);
    }

    fn snapshot(&self) -> Vec<u8> {
        let mut enc = Enc::with_capacity(self.state_size() + 32);
        enc.u64(self.window_ns).u64(self.current_window);
        self.left.encode(&mut enc);
        self.right.encode(&mut enc);
        enc.finish()
    }

    fn restore(&mut self, bytes: &[u8]) -> Result<(), DecodeError> {
        let mut dec = Dec::new(bytes);
        self.window_ns = dec.u64()?;
        self.current_window = dec.u64()?;
        self.left = KeyedState::decode(&mut dec)?;
        self.right = KeyedState::decode(&mut dec)?;
        dec.finish()
    }

    fn state_size(&self) -> usize {
        16 + self.left.byte_size() + self.right.byte_size()
    }

    fn reset(&mut self) {
        // `window_ns` is a construction parameter, not state.
        self.current_window = 0;
        self.left.clear();
        self.right.clear();
    }

    fn snapshot_len(&self) -> usize {
        16 + self.left.encoded_len() + self.right.encoded_len()
    }
}

/// Windowed count per key over processing-time tumbling windows
/// (NexMark Q12: bids per bidder per window), running semantics: each
/// arrival emits the updated `(key, count)` pair.
pub struct WindowedCountOp {
    window_ns: u64,
    current_window: u64,
    counts: KeyedState<u64>,
}

impl WindowedCountOp {
    pub fn new(window_ns: u64) -> Self {
        assert!(window_ns > 0);
        Self {
            window_ns,
            current_window: 0,
            counts: KeyedState::new(),
        }
    }

    fn roll(&mut self, now: Time) {
        let w = now / self.window_ns;
        if w != self.current_window {
            self.counts.clear();
            self.current_window = w;
        }
    }

    pub fn count_of(&self, key: u64) -> u64 {
        self.counts.get(key).copied().unwrap_or(0)
    }
}

impl Operator for WindowedCountOp {
    fn on_record(&mut self, _port: PortId, rec: Record, ctx: &mut OpCtx) {
        self.roll(ctx.now);
        let n = self.counts.upsert(
            rec.key,
            || 0,
            |c| {
                *c += 1;
                *c
            },
        );
        ctx.emit(
            rec.derive(
                rec.key,
                Value::Tuple(
                    [
                        Value::U64(rec.key),
                        Value::U64(n),
                        Value::U64(self.current_window),
                    ]
                    .into(),
                ),
            ),
        );
        ctx.set_timer((self.current_window + 1) * self.window_ns);
    }

    fn on_timer(&mut self, at: Time, _ctx: &mut OpCtx) {
        self.roll(at);
    }

    fn snapshot(&self) -> Vec<u8> {
        let mut enc = Enc::with_capacity(self.state_size() + 32);
        enc.u64(self.window_ns).u64(self.current_window);
        self.counts.encode(&mut enc);
        enc.finish()
    }

    fn restore(&mut self, bytes: &[u8]) -> Result<(), DecodeError> {
        let mut dec = Dec::new(bytes);
        self.window_ns = dec.u64()?;
        self.current_window = dec.u64()?;
        self.counts = KeyedState::decode(&mut dec)?;
        dec.finish()
    }

    fn state_size(&self) -> usize {
        16 + self.counts.byte_size()
    }

    fn reset(&mut self) {
        self.current_window = 0;
        self.counts.clear();
    }

    fn snapshot_len(&self) -> usize {
        16 + self.counts.encoded_len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(key: u64, tag: &str) -> Record {
        Record::new(key, Value::str(tag), 0)
    }

    fn drive(op: &mut dyn Operator, port: PortId, r: Record, now: Time) -> Vec<Record> {
        let mut ctx = OpCtx::new(now);
        op.on_record(port, r, &mut ctx);
        ctx.take().0.into_iter().map(|(_, r)| r).collect()
    }

    #[test]
    fn window_join_within_window() {
        let mut op = WindowJoinOp::new(1_000);
        assert!(drive(&mut op, PortId::LEFT, rec(1, "p"), 100).is_empty());
        let out = drive(&mut op, PortId::RIGHT, rec(1, "a"), 200);
        assert_eq!(out.len(), 1);
    }

    #[test]
    fn window_join_expires_across_windows() {
        let mut op = WindowJoinOp::new(1_000);
        drive(&mut op, PortId::LEFT, rec(1, "p"), 100);
        // next window: previous left side is gone
        let out = drive(&mut op, PortId::RIGHT, rec(1, "a"), 1_200);
        assert!(out.is_empty());
    }

    #[test]
    fn window_join_timer_cleans_state() {
        let mut op = WindowJoinOp::new(1_000);
        drive(&mut op, PortId::LEFT, rec(1, "p"), 100);
        assert!(op.state_size() > 16);
        let mut ctx = OpCtx::new(1_000);
        op.on_timer(1_000, &mut ctx);
        assert_eq!(op.state_size(), 16);
    }

    #[test]
    fn window_join_requests_cleanup_timer() {
        let mut op = WindowJoinOp::new(1_000);
        let mut ctx = OpCtx::new(250);
        op.on_record(PortId::LEFT, rec(1, "p"), &mut ctx);
        let (_, timers) = ctx.take();
        assert_eq!(timers, vec![1_000]);
    }

    #[test]
    fn windowed_count_running_emission() {
        let mut op = WindowedCountOp::new(1_000);
        let o1 = drive(&mut op, PortId(0), rec(7, "b"), 10);
        assert_eq!(o1[0].value.field(1).as_u64(), Some(1));
        let o2 = drive(&mut op, PortId(0), rec(7, "b"), 20);
        assert_eq!(o2[0].value.field(1).as_u64(), Some(2));
        // new window resets
        let o3 = drive(&mut op, PortId(0), rec(7, "b"), 1_500);
        assert_eq!(o3[0].value.field(1).as_u64(), Some(1));
    }

    #[test]
    fn counts_are_per_key() {
        let mut op = WindowedCountOp::new(1_000);
        drive(&mut op, PortId(0), rec(1, "b"), 10);
        drive(&mut op, PortId(0), rec(2, "b"), 20);
        drive(&mut op, PortId(0), rec(1, "b"), 30);
        assert_eq!(op.count_of(1), 2);
        assert_eq!(op.count_of(2), 1);
    }

    #[test]
    fn snapshot_restore_mid_window() {
        let mut op = WindowedCountOp::new(1_000);
        drive(&mut op, PortId(0), rec(1, "b"), 10);
        drive(&mut op, PortId(0), rec(1, "b"), 20);
        let snap = op.snapshot();
        let mut fresh = WindowedCountOp::new(1);
        fresh.restore(&snap).unwrap();
        // continues counting in the same window
        let out = drive(&mut fresh, PortId(0), rec(1, "b"), 30);
        assert_eq!(out[0].value.field(1).as_u64(), Some(3));
    }

    #[test]
    fn window_join_snapshot_roundtrip() {
        let mut op = WindowJoinOp::new(5_000);
        drive(&mut op, PortId::LEFT, rec(1, "p"), 100);
        drive(&mut op, PortId::RIGHT, rec(2, "a"), 200);
        let snap = op.snapshot();
        let mut fresh = WindowJoinOp::new(1);
        fresh.restore(&snap).unwrap();
        assert_eq!(fresh.window_ns(), 5_000);
        assert_eq!(fresh.state_size(), op.state_size());
        let out = drive(&mut fresh, PortId::RIGHT, rec(1, "a"), 300);
        assert_eq!(out.len(), 1);
    }
}
