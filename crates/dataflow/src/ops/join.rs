//! Incremental (unwindowed) symmetric hash join — NexMark Q3's
//! person ⋈ auction join.

use crate::codec::{Codec, Dec, DecodeError, Enc};
use crate::ids::PortId;
use crate::operator::{OpCtx, Operator};
use crate::record::Record;
use crate::state::KeyedState;
use crate::value::Value;

/// Symmetric incremental hash join on the record key.
///
/// Records on [`PortId::LEFT`] are stored in the left state and probed
/// against the right state (and vice versa); every match emits a
/// `Tuple(left_value, right_value)` keyed by the join key. State grows
/// for the whole run — exactly the behaviour that makes Q3's checkpoints
/// expensive in the paper (Fig. 8/9).
pub struct IncrementalJoinOp {
    left: KeyedState<Vec<Value>>,
    right: KeyedState<Vec<Value>>,
}

impl Default for IncrementalJoinOp {
    fn default() -> Self {
        Self::new()
    }
}

impl IncrementalJoinOp {
    pub fn new() -> Self {
        Self {
            left: KeyedState::new(),
            right: KeyedState::new(),
        }
    }

    pub fn left_len(&self) -> usize {
        self.left.len()
    }

    pub fn right_len(&self) -> usize {
        self.right.len()
    }
}

impl Operator for IncrementalJoinOp {
    fn on_record(&mut self, port: PortId, rec: Record, ctx: &mut OpCtx) {
        let key = rec.key;
        if port == PortId::LEFT {
            self.left.append(key, rec.value.clone());
            if let Some(matches) = self.right.get(key) {
                for rv in matches {
                    ctx.emit(rec.derive(key, Value::Tuple([rec.value.clone(), rv.clone()].into())));
                }
            }
        } else {
            self.right.append(key, rec.value.clone());
            if let Some(matches) = self.left.get(key) {
                for lv in matches {
                    ctx.emit(rec.derive(key, Value::Tuple([lv.clone(), rec.value.clone()].into())));
                }
            }
        }
    }

    fn snapshot(&self) -> Vec<u8> {
        let mut enc = Enc::with_capacity(self.state_size() + 16);
        self.left.encode(&mut enc);
        self.right.encode(&mut enc);
        enc.finish()
    }

    fn restore(&mut self, bytes: &[u8]) -> Result<(), DecodeError> {
        let mut dec = Dec::new(bytes);
        self.left = KeyedState::decode(&mut dec)?;
        self.right = KeyedState::decode(&mut dec)?;
        dec.finish()
    }

    fn state_size(&self) -> usize {
        self.left.byte_size() + self.right.byte_size()
    }

    fn reset(&mut self) {
        self.left.clear();
        self.right.clear();
    }

    fn snapshot_len(&self) -> usize {
        self.left.encoded_len() + self.right.encoded_len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::operator::drive_once;

    fn rec(key: u64, tag: &str) -> Record {
        Record::new(key, Value::str(tag), 0)
    }

    #[test]
    fn joins_matching_keys_both_directions() {
        let mut op = IncrementalJoinOp::new();
        assert!(drive_once(&mut op, PortId::LEFT, rec(1, "p1"), 0).is_empty());
        let out = drive_once(&mut op, PortId::RIGHT, rec(1, "a1"), 0);
        assert_eq!(out.len(), 1);
        let t = out[0].value.as_tuple().unwrap();
        assert_eq!(t[0].as_str(), Some("p1"));
        assert_eq!(t[1].as_str(), Some("a1"));
        // second left arrival probes existing right
        let out = drive_once(&mut op, PortId::LEFT, rec(1, "p2"), 0);
        assert_eq!(out.len(), 1);
        let t = out[0].value.as_tuple().unwrap();
        assert_eq!(t[0].as_str(), Some("p2"));
    }

    #[test]
    fn no_join_across_keys() {
        let mut op = IncrementalJoinOp::new();
        drive_once(&mut op, PortId::LEFT, rec(1, "p"), 0);
        assert!(drive_once(&mut op, PortId::RIGHT, rec(2, "a"), 0).is_empty());
    }

    #[test]
    fn multi_match_fanout() {
        let mut op = IncrementalJoinOp::new();
        drive_once(&mut op, PortId::RIGHT, rec(5, "a1"), 0);
        drive_once(&mut op, PortId::RIGHT, rec(5, "a2"), 0);
        drive_once(&mut op, PortId::RIGHT, rec(5, "a3"), 0);
        let out = drive_once(&mut op, PortId::LEFT, rec(5, "p"), 0);
        assert_eq!(out.len(), 3);
    }

    #[test]
    fn snapshot_restore_roundtrip() {
        let mut op = IncrementalJoinOp::new();
        for k in 0..10 {
            drive_once(&mut op, PortId::LEFT, rec(k, "p"), 0);
            drive_once(&mut op, PortId::RIGHT, rec(k, "a"), 0);
        }
        let snap = op.snapshot();
        let mut fresh = IncrementalJoinOp::new();
        fresh.restore(&snap).unwrap();
        assert_eq!(fresh.state_size(), op.state_size());
        // restored operator joins like the original
        let a = drive_once(&mut op, PortId::LEFT, rec(3, "probe"), 0);
        let b = drive_once(&mut fresh, PortId::LEFT, rec(3, "probe"), 0);
        assert_eq!(a, b);
    }

    #[test]
    fn state_size_grows_with_input() {
        let mut op = IncrementalJoinOp::new();
        let s0 = op.state_size();
        drive_once(&mut op, PortId::LEFT, rec(1, "payload"), 0);
        assert!(op.state_size() > s0);
        assert!(!op.is_stateless());
    }
}
