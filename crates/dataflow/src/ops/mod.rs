//! Built-in streaming operators.
//!
//! These cover the fundamental operations the paper's workload uses
//! (§VI): maps, filters, incremental joins, windowed joins, windowed
//! aggregates, and sinks — all with snapshotable state.

mod basic;
mod counter;
mod join;
mod sink;
mod window;

pub use basic::{FilterOp, FlatMapOp, MapOp, PassThroughOp};
pub use counter::KeyedCounterOp;
pub use join::IncrementalJoinOp;
pub use sink::{digest_of, Digest, DigestSinkOp};
pub use window::{WindowJoinOp, WindowedCountOp};
