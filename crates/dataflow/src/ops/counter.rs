//! Unwindowed per-key counter — a simple stateful operator used by the
//! quickstart example and engine tests.

use crate::codec::{Codec, Dec, DecodeError, Enc};
use crate::ids::PortId;
use crate::operator::{OpCtx, Operator};
use crate::record::Record;
use crate::state::KeyedState;
use crate::value::Value;

/// Counts records per key over the whole stream and emits the running
/// `(key, count)` on every update.
#[derive(Default)]
pub struct KeyedCounterOp {
    counts: KeyedState<u64>,
}

impl KeyedCounterOp {
    pub fn new() -> Self {
        Self::default()
    }

    pub fn count_of(&self, key: u64) -> u64 {
        self.counts.get(key).copied().unwrap_or(0)
    }

    pub fn distinct_keys(&self) -> usize {
        self.counts.len()
    }
}

impl Operator for KeyedCounterOp {
    fn on_record(&mut self, _port: PortId, rec: Record, ctx: &mut OpCtx) {
        let n = self.counts.upsert(
            rec.key,
            || 0,
            |c| {
                *c += 1;
                *c
            },
        );
        ctx.emit(rec.derive(
            rec.key,
            Value::Tuple([Value::U64(rec.key), Value::U64(n)].into()),
        ));
    }

    fn snapshot(&self) -> Vec<u8> {
        let mut enc = Enc::with_capacity(self.state_size() + 8);
        self.counts.encode(&mut enc);
        enc.finish()
    }

    fn restore(&mut self, bytes: &[u8]) -> Result<(), DecodeError> {
        let mut dec = Dec::new(bytes);
        self.counts = KeyedState::decode(&mut dec)?;
        dec.finish()
    }

    fn state_size(&self) -> usize {
        self.counts.byte_size()
    }

    fn reset(&mut self) {
        self.counts.clear();
    }

    fn snapshot_len(&self) -> usize {
        self.counts.encoded_len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::operator::drive_once;

    #[test]
    fn counts_and_emits() {
        let mut op = KeyedCounterOp::new();
        let r = Record::new(4, Value::Unit, 0);
        let o1 = drive_once(&mut op, PortId(0), r.clone(), 0);
        assert_eq!(o1[0].value.field(1).as_u64(), Some(1));
        let o2 = drive_once(&mut op, PortId(0), r, 0);
        assert_eq!(o2[0].value.field(1).as_u64(), Some(2));
        assert_eq!(op.count_of(4), 2);
        assert_eq!(op.distinct_keys(), 1);
    }

    #[test]
    fn restore_resumes_counts() {
        let mut op = KeyedCounterOp::new();
        for _ in 0..3 {
            drive_once(&mut op, PortId(0), Record::new(9, Value::Unit, 0), 0);
        }
        let snap = op.snapshot();
        let mut fresh = KeyedCounterOp::new();
        fresh.restore(&snap).unwrap();
        let out = drive_once(&mut fresh, PortId(0), Record::new(9, Value::Unit, 0), 0);
        assert_eq!(out[0].value.field(1).as_u64(), Some(4));
    }
}
