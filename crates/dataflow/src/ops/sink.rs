//! Digest sink: terminal operator whose state is an order-independent
//! digest of everything it processed. Used to verify exactly-once
//! processing: after any failure/recovery, the sink's *state* must equal
//! the failure-free run's state (duplicate *outputs* to the external world
//! are permitted and counted separately by the engine — exactly-once
//! processing vs. exactly-once output, paper §II-A).

use crate::codec::{Dec, DecodeError, Enc};
use crate::ids::PortId;
use crate::operator::{OpCtx, Operator};
use crate::record::Record;
#[cfg(test)]
use crate::value::Value;
use crate::value::{fnv1a_update, FNV_OFFSET};

/// Order-independent digest over `(key, value)` pairs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Digest {
    pub count: u64,
    /// Commutative combination (wrapping sum) of per-record hashes, so two
    /// runs that processed the same multiset of records in different
    /// arrival orders produce equal digests.
    pub acc: u64,
}

impl Digest {
    pub fn add(&mut self, rec: &Record) {
        // Streamed FNV over (key, canonical value encoding) — the same
        // bytes (and therefore the same digest) as encoding into a
        // buffer first, without the per-record allocation.
        let mut h = FNV_OFFSET;
        fnv1a_update(&mut h, &rec.key.to_le_bytes());
        rec.value.hash_update(&mut h);
        self.count = self.count.wrapping_add(1);
        self.acc = self.acc.wrapping_add(h);
    }
}

/// Terminal operator maintaining a [`Digest`].
#[derive(Debug, Default)]
pub struct DigestSinkOp {
    digest: Digest,
}

impl DigestSinkOp {
    pub fn new() -> Self {
        Self::default()
    }

    pub fn digest(&self) -> Digest {
        self.digest
    }
}

impl Operator for DigestSinkOp {
    fn on_record(&mut self, _port: PortId, rec: Record, _ctx: &mut OpCtx) {
        self.digest.add(&rec);
    }

    fn snapshot(&self) -> Vec<u8> {
        let mut enc = Enc::with_capacity(16);
        enc.u64(self.digest.count).u64(self.digest.acc);
        enc.finish()
    }

    fn restore(&mut self, bytes: &[u8]) -> Result<(), DecodeError> {
        let mut dec = Dec::new(bytes);
        self.digest.count = dec.u64()?;
        self.digest.acc = dec.u64()?;
        dec.finish()
    }

    fn state_size(&self) -> usize {
        16
    }

    fn reset(&mut self) {
        self.digest = Digest::default();
    }

    fn snapshot_len(&self) -> usize {
        16
    }

    fn sink_digest(&self) -> Option<Digest> {
        Some(self.digest)
    }
}

/// Convenience for tests: digest a whole slice of records.
pub fn digest_of(records: &[Record]) -> Digest {
    let mut d = Digest::default();
    for r in records {
        d.add(r);
    }
    d
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::operator::drive_once;

    fn rec(key: u64, v: u64) -> Record {
        Record::new(key, Value::U64(v), 0)
    }

    #[test]
    fn digest_is_order_independent() {
        let a = digest_of(&[rec(1, 10), rec(2, 20), rec(3, 30)]);
        let b = digest_of(&[rec(3, 30), rec(1, 10), rec(2, 20)]);
        assert_eq!(a, b);
    }

    #[test]
    fn digest_detects_duplicates() {
        let once = digest_of(&[rec(1, 10), rec(2, 20)]);
        let dup = digest_of(&[rec(1, 10), rec(2, 20), rec(2, 20)]);
        assert_ne!(once, dup);
        assert_eq!(dup.count, 3);
    }

    #[test]
    fn digest_detects_missing() {
        let full = digest_of(&[rec(1, 10), rec(2, 20)]);
        let partial = digest_of(&[rec(1, 10)]);
        assert_ne!(full, partial);
    }

    #[test]
    fn sink_emits_nothing() {
        let mut op = DigestSinkOp::new();
        let out = drive_once(&mut op, PortId(0), rec(1, 1), 0);
        assert!(out.is_empty());
        assert_eq!(op.digest().count, 1);
    }

    #[test]
    fn snapshot_roundtrip() {
        let mut op = DigestSinkOp::new();
        drive_once(&mut op, PortId(0), rec(1, 1), 0);
        drive_once(&mut op, PortId(0), rec(2, 2), 0);
        let snap = op.snapshot();
        let mut fresh = DigestSinkOp::new();
        fresh.restore(&snap).unwrap();
        assert_eq!(fresh.digest(), op.digest());
    }

    #[test]
    fn ingest_time_does_not_affect_digest() {
        // Latency metadata must not change the logical content digest:
        // replays after recovery re-stamp arrival but carry equal payloads.
        let a = digest_of(&[Record::new(1, Value::U64(5), 100)]);
        let b = digest_of(&[Record::new(1, Value::U64(5), 999)]);
        assert_eq!(a, b);
    }
}
