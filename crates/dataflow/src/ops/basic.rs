//! Stateless operators: map, filter, flat-map, pass-through.

use crate::codec::DecodeError;
use crate::ids::PortId;
use crate::operator::{OpCtx, Operator};
use crate::record::Record;

type MapFn = Box<dyn Fn(Record) -> Record + Send>;
type FilterFn = Box<dyn Fn(&Record) -> bool + Send>;
type FlatMapFn = Box<dyn Fn(Record) -> Vec<Record> + Send>;

/// Applies a function to every record (NexMark Q1's bid currency
/// conversion is a `MapOp`).
pub struct MapOp {
    f: MapFn,
}

impl MapOp {
    pub fn new(f: impl Fn(Record) -> Record + Send + 'static) -> Self {
        Self { f: Box::new(f) }
    }
}

impl Operator for MapOp {
    fn on_record(&mut self, _port: PortId, rec: Record, ctx: &mut OpCtx) {
        ctx.emit((self.f)(rec));
    }

    fn snapshot(&self) -> Vec<u8> {
        Vec::new()
    }

    fn restore(&mut self, _bytes: &[u8]) -> Result<(), DecodeError> {
        Ok(())
    }

    fn state_size(&self) -> usize {
        0
    }

    fn reset(&mut self) {}

    fn snapshot_len(&self) -> usize {
        0
    }

    fn is_stateless(&self) -> bool {
        true
    }
}

/// Drops records failing a predicate.
pub struct FilterOp {
    f: FilterFn,
}

impl FilterOp {
    pub fn new(f: impl Fn(&Record) -> bool + Send + 'static) -> Self {
        Self { f: Box::new(f) }
    }
}

impl Operator for FilterOp {
    fn on_record(&mut self, _port: PortId, rec: Record, ctx: &mut OpCtx) {
        if (self.f)(&rec) {
            ctx.emit(rec);
        }
    }

    fn snapshot(&self) -> Vec<u8> {
        Vec::new()
    }

    fn restore(&mut self, _bytes: &[u8]) -> Result<(), DecodeError> {
        Ok(())
    }

    fn state_size(&self) -> usize {
        0
    }

    fn reset(&mut self) {}

    fn snapshot_len(&self) -> usize {
        0
    }

    fn is_stateless(&self) -> bool {
        true
    }
}

/// Emits zero or more records per input.
pub struct FlatMapOp {
    f: FlatMapFn,
}

impl FlatMapOp {
    pub fn new(f: impl Fn(Record) -> Vec<Record> + Send + 'static) -> Self {
        Self { f: Box::new(f) }
    }
}

impl Operator for FlatMapOp {
    fn on_record(&mut self, _port: PortId, rec: Record, ctx: &mut OpCtx) {
        for r in (self.f)(rec) {
            ctx.emit(r);
        }
    }

    fn snapshot(&self) -> Vec<u8> {
        Vec::new()
    }

    fn restore(&mut self, _bytes: &[u8]) -> Result<(), DecodeError> {
        Ok(())
    }

    fn state_size(&self) -> usize {
        0
    }

    fn reset(&mut self) {}

    fn snapshot_len(&self) -> usize {
        0
    }

    fn is_stateless(&self) -> bool {
        true
    }
}

/// Forwards records unchanged. Used for sources whose reading logic lives
/// in the engine, and as a test stand-in.
#[derive(Default)]
pub struct PassThroughOp;

impl Operator for PassThroughOp {
    fn on_record(&mut self, _port: PortId, rec: Record, ctx: &mut OpCtx) {
        ctx.emit(rec);
    }

    fn snapshot(&self) -> Vec<u8> {
        Vec::new()
    }

    fn restore(&mut self, _bytes: &[u8]) -> Result<(), DecodeError> {
        Ok(())
    }

    fn state_size(&self) -> usize {
        0
    }

    fn reset(&mut self) {}

    fn snapshot_len(&self) -> usize {
        0
    }

    fn is_stateless(&self) -> bool {
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::operator::drive_once;
    use crate::value::Value;

    #[test]
    fn map_transforms() {
        let mut op = MapOp::new(|r| {
            let v = r.value.as_u64().unwrap();
            r.derive(r.key, Value::U64(v * 2))
        });
        let out = drive_once(&mut op, PortId(0), Record::new(1, Value::U64(21), 7), 0);
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].value.as_u64(), Some(42));
        assert_eq!(out[0].ingest_time, 7);
    }

    #[test]
    fn filter_drops() {
        let mut op = FilterOp::new(|r| r.key % 2 == 0);
        assert_eq!(
            drive_once(&mut op, PortId(0), Record::new(1, Value::Unit, 0), 0).len(),
            0
        );
        assert_eq!(
            drive_once(&mut op, PortId(0), Record::new(2, Value::Unit, 0), 0).len(),
            1
        );
    }

    #[test]
    fn flatmap_fans_out() {
        let mut op = FlatMapOp::new(|r| vec![r.clone(), r]);
        let out = drive_once(&mut op, PortId(0), Record::new(3, Value::Unit, 0), 0);
        assert_eq!(out.len(), 2);
    }

    #[test]
    fn stateless_snapshot_is_empty() {
        let op = PassThroughOp;
        assert!(op.snapshot().is_empty());
        assert!(op.is_stateless());
        assert_eq!(op.state_size(), 0);
    }
}
