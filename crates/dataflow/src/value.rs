//! Dynamic payload values carried by stream records.
//!
//! Workloads (NexMark, the cyclic reachability query, synthetic tests) all
//! express their record payloads in this small dynamic model so that the
//! engine, the channel logs, and the checkpoint snapshots stay monomorphic.
//! Every value has a stable binary encoding ([`Codec`]) and therefore a
//! well-defined wire size, which the cost model charges for.

use crate::codec::{Codec, Dec, DecodeError, Enc};
use std::fmt;
use std::sync::Arc;

/// A dynamically typed payload value.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    Unit,
    U64(u64),
    I64(i64),
    F64(f64),
    Str(Arc<str>),
    /// Fixed-arity composite (used for tuples/structs like a NexMark bid).
    Tuple(Arc<[Value]>),
    /// Variable-length list (used for reachability paths). Shared, so a
    /// record fan-out clones an `Arc` instead of deep-copying the list —
    /// payloads are immutable once built, which makes every hop O(1).
    List(Arc<[Value]>),
}

impl Value {
    pub fn str(s: impl Into<Arc<str>>) -> Self {
        Value::Str(s.into())
    }

    pub fn tuple(items: impl Into<Arc<[Value]>>) -> Self {
        Value::Tuple(items.into())
    }

    pub fn list(items: impl Into<Arc<[Value]>>) -> Self {
        Value::List(items.into())
    }

    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::U64(v) => Some(*v),
            _ => None,
        }
    }

    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Value::I64(v) => Some(*v),
            _ => None,
        }
    }

    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::F64(v) => Some(*v),
            _ => None,
        }
    }

    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    pub fn as_tuple(&self) -> Option<&[Value]> {
        match self {
            Value::Tuple(t) => Some(t),
            _ => None,
        }
    }

    pub fn as_list(&self) -> Option<&[Value]> {
        match self {
            Value::List(l) => Some(l),
            _ => None,
        }
    }

    /// Tuple field access; panics with a descriptive message on misuse.
    /// Operators use this for schema fields they constructed themselves.
    pub fn field(&self, idx: usize) -> &Value {
        match self {
            Value::Tuple(t) => &t[idx],
            other => panic!("Value::field({idx}) on non-tuple {other:?}"),
        }
    }

    /// The encoded wire size of this value in bytes. This is what the cost
    /// model charges for serialization and what channel logs account.
    pub fn encoded_len(&self) -> usize {
        match self {
            Value::Unit => 1,
            Value::U64(_) | Value::I64(_) | Value::F64(_) => 1 + 8,
            Value::Str(s) => 1 + 4 + s.len(),
            Value::Tuple(t) => 1 + 4 + t.iter().map(Value::encoded_len).sum::<usize>(),
            Value::List(l) => 1 + 4 + l.iter().map(Value::encoded_len).sum::<usize>(),
        }
    }

    /// A deterministic 64-bit hash of the value, used for sink digests in
    /// exactly-once verification. FNV-1a over the encoded bytes, streamed
    /// without materializing the encoding (bit-identical to
    /// `fnv1a(&self.to_bytes())`).
    pub fn stable_hash(&self) -> u64 {
        let mut h = FNV_OFFSET;
        self.hash_update(&mut h);
        h
    }

    /// Fold this value's canonical encoding into a running FNV-1a state,
    /// byte-for-byte identical to hashing [`Codec::to_bytes`] output.
    pub fn hash_update(&self, h: &mut u64) {
        match self {
            Value::Unit => fnv1a_update(h, &[TAG_UNIT]),
            Value::U64(v) => {
                fnv1a_update(h, &[TAG_U64]);
                fnv1a_update(h, &v.to_le_bytes());
            }
            Value::I64(v) => {
                fnv1a_update(h, &[TAG_I64]);
                fnv1a_update(h, &v.to_le_bytes());
            }
            Value::F64(v) => {
                fnv1a_update(h, &[TAG_F64]);
                fnv1a_update(h, &v.to_le_bytes());
            }
            Value::Str(s) => {
                fnv1a_update(h, &[TAG_STR]);
                fnv1a_update(h, &(s.len() as u32).to_le_bytes());
                fnv1a_update(h, s.as_bytes());
            }
            Value::Tuple(t) => {
                fnv1a_update(h, &[TAG_TUPLE]);
                fnv1a_update(h, &(t.len() as u32).to_le_bytes());
                for v in t.iter() {
                    v.hash_update(h);
                }
            }
            Value::List(l) => {
                fnv1a_update(h, &[TAG_LIST]);
                fnv1a_update(h, &(l.len() as u32).to_le_bytes());
                for v in l.iter() {
                    v.hash_update(h);
                }
            }
        }
    }
}

/// FNV-1a offset basis (the running-state seed for [`fnv1a_update`]).
pub const FNV_OFFSET: u64 = 0xcbf29ce484222325;

/// Fold `bytes` into a running FNV-1a state.
#[inline]
pub fn fnv1a_update(h: &mut u64, bytes: &[u8]) {
    let mut acc = *h;
    for &b in bytes {
        acc ^= b as u64;
        acc = acc.wrapping_mul(0x100000001b3);
    }
    *h = acc;
}

/// FNV-1a hash; stable across platforms and runs.
pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h = FNV_OFFSET;
    fnv1a_update(&mut h, bytes);
    h
}

const TAG_UNIT: u8 = 0;
const TAG_U64: u8 = 1;
const TAG_I64: u8 = 2;
const TAG_F64: u8 = 3;
const TAG_STR: u8 = 4;
const TAG_TUPLE: u8 = 5;
const TAG_LIST: u8 = 6;

impl Codec for Value {
    fn encoded_len_hint(&self) -> usize {
        self.encoded_len()
    }

    fn encode(&self, enc: &mut Enc) {
        match self {
            Value::Unit => {
                enc.u8(TAG_UNIT);
            }
            Value::U64(v) => {
                enc.u8(TAG_U64).u64(*v);
            }
            Value::I64(v) => {
                enc.u8(TAG_I64).i64(*v);
            }
            Value::F64(v) => {
                enc.u8(TAG_F64).f64(*v);
            }
            Value::Str(s) => {
                enc.u8(TAG_STR).str(s);
            }
            Value::Tuple(t) => {
                enc.u8(TAG_TUPLE).u32(t.len() as u32);
                for v in t.iter() {
                    v.encode(enc);
                }
            }
            Value::List(l) => {
                enc.u8(TAG_LIST).u32(l.len() as u32);
                for v in l.iter() {
                    v.encode(enc);
                }
            }
        }
    }

    fn decode(dec: &mut Dec<'_>) -> Result<Self, DecodeError> {
        let tag = dec.u8()?;
        Ok(match tag {
            TAG_UNIT => Value::Unit,
            TAG_U64 => Value::U64(dec.u64()?),
            TAG_I64 => Value::I64(dec.i64()?),
            TAG_F64 => Value::F64(dec.f64()?),
            TAG_STR => Value::str(dec.str()?),
            TAG_TUPLE => {
                let n = dec.u32()? as usize;
                let mut items = Vec::with_capacity(n.min(1 << 16));
                for _ in 0..n {
                    items.push(Value::decode(dec)?);
                }
                Value::Tuple(items.into())
            }
            TAG_LIST => {
                let n = dec.u32()? as usize;
                let mut items = Vec::with_capacity(n.min(1 << 16));
                for _ in 0..n {
                    items.push(Value::decode(dec)?);
                }
                Value::List(items.into())
            }
            _ => {
                return Err(DecodeError {
                    context: "unknown value tag",
                    offset: 0,
                })
            }
        })
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Unit => write!(f, "()"),
            Value::U64(v) => write!(f, "{v}"),
            Value::I64(v) => write!(f, "{v}"),
            Value::F64(v) => write!(f, "{v}"),
            Value::Str(s) => write!(f, "{s:?}"),
            Value::Tuple(t) => {
                write!(f, "(")?;
                for (i, v) in t.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{v}")?;
                }
                write!(f, ")")
            }
            Value::List(l) => {
                write!(f, "[")?;
                for (i, v) in l.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{v}")?;
                }
                write!(f, "]")
            }
        }
    }
}

impl From<u64> for Value {
    fn from(v: u64) -> Self {
        Value::U64(v)
    }
}

impl From<i64> for Value {
    fn from(v: i64) -> Self {
        Value::I64(v)
    }
}

impl From<f64> for Value {
    fn from(v: f64) -> Self {
        Value::F64(v)
    }
}

impl From<&str> for Value {
    fn from(v: &str) -> Self {
        Value::str(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Value {
        Value::tuple(vec![
            Value::U64(42),
            Value::str("auction"),
            Value::list(vec![Value::I64(-1), Value::F64(2.5)]),
            Value::Unit,
        ])
    }

    #[test]
    fn roundtrip() {
        let v = sample();
        let bytes = v.to_bytes();
        assert_eq!(Value::from_bytes(&bytes).unwrap(), v);
    }

    #[test]
    fn encoded_len_matches_actual_encoding() {
        for v in [
            Value::Unit,
            Value::U64(7),
            Value::str("hello world"),
            sample(),
            Value::list(vec![]),
        ] {
            assert_eq!(v.encoded_len(), v.to_bytes().len(), "{v}");
        }
    }

    #[test]
    fn stable_hash_is_deterministic_and_discriminating() {
        assert_eq!(sample().stable_hash(), sample().stable_hash());
        assert_ne!(Value::U64(1).stable_hash(), Value::U64(2).stable_hash());
        // Different types with same bit pattern must differ (tag byte).
        assert_ne!(Value::U64(1).stable_hash(), Value::I64(1).stable_hash());
    }

    #[test]
    fn field_access() {
        let v = sample();
        assert_eq!(v.field(0).as_u64(), Some(42));
        assert_eq!(v.field(1).as_str(), Some("auction"));
    }

    #[test]
    #[should_panic(expected = "non-tuple")]
    fn field_on_scalar_panics() {
        Value::U64(1).field(0);
    }

    #[test]
    fn display_is_readable() {
        assert_eq!(sample().to_string(), r#"(42, "auction", [-1, 2.5], ())"#);
    }

    #[test]
    fn unknown_tag_rejected() {
        assert!(Value::from_bytes(&[99]).is_err());
    }
}
