//! The operator abstraction.
//!
//! Operators are single-threaded state machines driven by the hosting
//! engine: records in, records out, with snapshot/restore hooks used by the
//! checkpointing protocols. The same operator implementations run on the
//! virtual-time engine (`checkmate-engine`) and the threaded real-time
//! engine (`checkmate-runtime`).

use crate::codec::DecodeError;
use crate::ids::PortId;
use crate::record::{Record, Time};

/// Execution context handed to an operator for one invocation.
///
/// Collects emitted records (tagged with the operator's output edge index)
/// and timer requests; the engine drains both after the call returns.
#[derive(Debug)]
pub struct OpCtx {
    /// Current processing time (virtual or wall-clock nanoseconds).
    pub now: Time,
    outputs: Vec<(usize, Record)>,
    timers: Vec<Time>,
}

impl OpCtx {
    pub fn new(now: Time) -> Self {
        Self {
            now,
            outputs: Vec::new(),
            timers: Vec::new(),
        }
    }

    /// Emit a record on the operator's first (usually only) output edge.
    pub fn emit(&mut self, rec: Record) {
        self.outputs.push((0, rec));
    }

    /// Emit a record on a specific output edge (by declaration order in the
    /// logical graph).
    pub fn emit_to(&mut self, out_edge: usize, rec: Record) {
        self.outputs.push((out_edge, rec));
    }

    /// Request a timer callback at absolute time `at` (≥ now).
    pub fn set_timer(&mut self, at: Time) {
        self.timers.push(at);
    }

    /// Drain outputs and timer requests (engine-side).
    pub fn take(&mut self) -> (Vec<(usize, Record)>, Vec<Time>) {
        (
            std::mem::take(&mut self.outputs),
            std::mem::take(&mut self.timers),
        )
    }

    /// Return a drained output buffer so its capacity is reused by the
    /// next invocation (hot engines call operators millions of times;
    /// this keeps the per-record path allocation-free).
    pub fn put_back_outputs(&mut self, mut outputs: Vec<(usize, Record)>) {
        if outputs.capacity() > self.outputs.capacity() {
            outputs.clear();
            self.outputs = outputs;
        }
    }

    pub fn output_count(&self) -> usize {
        self.outputs.len()
    }
}

/// A dataflow operator instance.
///
/// Implementations must be deterministic: given the same sequence of
/// `on_record`/`on_timer` calls (ports, records, times), they must produce
/// the same outputs and the same snapshots. Determinism is what makes
/// recovery testable: replaying the same inputs after a rollback must
/// rebuild the same state.
pub trait Operator: Send {
    /// Process one input record arriving on `port`.
    fn on_record(&mut self, port: PortId, rec: Record, ctx: &mut OpCtx);

    /// Timer callback (used by windowed operators for expiry cleanup).
    fn on_timer(&mut self, _at: Time, _ctx: &mut OpCtx) {}

    /// Serialize the operator state. Called when the hosting protocol takes
    /// a checkpoint of this instance.
    fn snapshot(&self) -> Vec<u8>;

    /// Restore state from a snapshot produced by [`Operator::snapshot`].
    fn restore(&mut self, bytes: &[u8]) -> Result<(), DecodeError>;

    /// Return the operator to its freshly-constructed state (exactly as
    /// the graph's factory built it), keeping allocations where
    /// practical. Run-session reuse calls this between runs so a probe
    /// loop keeps one boxed instance alive instead of rebuilding and
    /// dropping every operator per run; a reset operator must be
    /// indistinguishable from a factory-fresh one (property-tested
    /// end-to-end in `engine/tests/session_equivalence.rs`).
    fn reset(&mut self);

    /// Exact byte length of the [`Operator::snapshot`] encoding, computed
    /// without building it. Sized-only snapshot accounting prices
    /// checkpoints from this on failure-free runs, so it must equal
    /// `self.snapshot().len()` bit-for-bit (the default does exactly
    /// that, at full encoding cost; stateful operators override it with
    /// an O(1) formula derived from their tracked state sizes).
    fn snapshot_len(&self) -> usize {
        self.snapshot().len()
    }

    /// Approximate in-memory state size in bytes. The cost model charges
    /// snapshot serialization proportional to this, so it should track the
    /// encoded size closely (exactness is not required).
    fn state_size(&self) -> usize;

    /// Stateless operators can skip checkpointing entirely under the
    /// uncoordinated protocol (paper §III-B, "configurability"): their
    /// snapshot is empty and restoring is a no-op.
    fn is_stateless(&self) -> bool {
        false
    }

    /// Sink operators report their exactly-once digest here; engines use
    /// it for verification. Non-sinks return `None`.
    fn sink_digest(&self) -> Option<crate::ops::Digest> {
        None
    }
}

/// Convenience: run a closure against a fresh context and return emissions.
/// Test helper used across workload crates.
pub fn drive_once(op: &mut dyn Operator, port: PortId, rec: Record, now: Time) -> Vec<Record> {
    let mut ctx = OpCtx::new(now);
    op.on_record(port, rec, &mut ctx);
    ctx.take().0.into_iter().map(|(_, r)| r).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::value::Value;

    #[test]
    fn ctx_collects_outputs_in_order() {
        let mut ctx = OpCtx::new(5);
        ctx.emit(Record::new(1, Value::U64(1), 0));
        ctx.emit_to(1, Record::new(2, Value::U64(2), 0));
        ctx.set_timer(100);
        let (outs, timers) = ctx.take();
        assert_eq!(outs.len(), 2);
        assert_eq!(outs[0].0, 0);
        assert_eq!(outs[1].0, 1);
        assert_eq!(timers, vec![100]);
        // take() drains
        let (outs, timers) = ctx.take();
        assert!(outs.is_empty() && timers.is_empty());
    }
}
