//! Keyed operator state with incremental size tracking.
//!
//! Operator state lives in ordered maps so that snapshots are byte-stable
//! regardless of insertion order (determinism requirement for recovery
//! verification), and so that the approximate state size — which the cost
//! model charges checkpoint serialization for — is maintained in O(1) per
//! update instead of re-encoding the whole map.

use crate::codec::{Codec, Dec, DecodeError, Enc};
use crate::value::Value;
use std::collections::BTreeMap;

/// Types with a cheaply computable encoded size.
pub trait ByteSized {
    fn byte_size(&self) -> usize;
}

impl ByteSized for u64 {
    fn byte_size(&self) -> usize {
        8
    }
}

impl ByteSized for i64 {
    fn byte_size(&self) -> usize {
        8
    }
}

impl ByteSized for Value {
    fn byte_size(&self) -> usize {
        self.encoded_len()
    }
}

impl<T: ByteSized> ByteSized for Vec<T> {
    fn byte_size(&self) -> usize {
        4 + self.iter().map(ByteSized::byte_size).sum::<usize>()
    }
}

impl<A: ByteSized, B: ByteSized> ByteSized for (A, B) {
    fn byte_size(&self) -> usize {
        self.0.byte_size() + self.1.byte_size()
    }
}

/// An ordered keyed state map tracking its own encoded size.
#[derive(Debug, Clone)]
pub struct KeyedState<V> {
    map: BTreeMap<u64, V>,
    bytes: usize,
}

impl<V: ByteSized> Default for KeyedState<V> {
    fn default() -> Self {
        Self::new()
    }
}

impl<V: ByteSized> KeyedState<V> {
    pub fn new() -> Self {
        Self {
            map: BTreeMap::new(),
            bytes: 0,
        }
    }

    pub fn len(&self) -> usize {
        self.map.len()
    }

    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Approximate encoded size in bytes (8 per key + value sizes).
    pub fn byte_size(&self) -> usize {
        self.bytes
    }

    /// Exact encoded length of [`Codec::encode`]'s output: the u32 entry
    /// count plus the tracked per-entry bytes. Exact because `ByteSized`
    /// sizes are definitionally the encoded sizes (8-byte keys, value
    /// encodings, 4-byte vector envelopes) — this is what lets operators
    /// report `snapshot_len` without encoding.
    pub fn encoded_len(&self) -> usize {
        4 + self.bytes
    }

    pub fn get(&self, key: u64) -> Option<&V> {
        self.map.get(&key)
    }

    pub fn insert(&mut self, key: u64, value: V) -> Option<V> {
        self.bytes += 8 + value.byte_size();
        let old = self.map.insert(key, value);
        if let Some(ref o) = old {
            self.bytes -= 8 + o.byte_size();
        }
        old
    }

    pub fn remove(&mut self, key: u64) -> Option<V> {
        let old = self.map.remove(&key);
        if let Some(ref o) = old {
            self.bytes -= 8 + o.byte_size();
        }
        old
    }

    pub fn clear(&mut self) {
        self.map.clear();
        self.bytes = 0;
    }

    pub fn iter(&self) -> impl Iterator<Item = (&u64, &V)> {
        self.map.iter()
    }

    pub fn keys(&self) -> impl Iterator<Item = &u64> {
        self.map.keys()
    }

    /// Recompute the byte size from scratch (test/debug aid).
    pub fn recomputed_size(&self) -> usize {
        self.map.values().map(|v| 8 + v.byte_size()).sum()
    }
}

impl<V: ByteSized> KeyedState<V> {
    /// `update` requires the default to be pre-counted; this entry-style
    /// helper inserts the default with correct accounting, then mutates.
    ///
    /// Note the size delta is computed by encoding-size walks of the
    /// whole entry before and after `f` — O(entry) per call. Join-style
    /// states appending one element to a growing vector should use
    /// [`KeyedState::append`], which accounts the delta in O(1).
    pub fn upsert<R>(
        &mut self,
        key: u64,
        default: impl FnOnce() -> V,
        f: impl FnOnce(&mut V) -> R,
    ) -> R {
        if !self.map.contains_key(&key) {
            self.insert(key, default());
        }
        let entry = self.map.get_mut(&key).expect("just inserted");
        let before = entry.byte_size();
        let r = f(entry);
        let after = entry.byte_size();
        self.bytes = self.bytes + after - before;
        r
    }
}

impl<T: ByteSized> KeyedState<Vec<T>> {
    /// Push `item` onto the vector at `key` (creating it when absent),
    /// with O(item) size accounting instead of [`KeyedState::upsert`]'s
    /// O(whole entry) re-walk — the hot path of every streaming join.
    pub fn append(&mut self, key: u64, item: T) {
        let add = item.byte_size();
        match self.map.get_mut(&key) {
            Some(v) => {
                v.push(item);
                self.bytes += add;
            }
            None => {
                // A fresh entry costs the key (8) plus the empty Vec
                // envelope (4) plus the item — the same accounting
                // `insert` would produce.
                self.map.insert(key, vec![item]);
                self.bytes += 8 + 4 + add;
            }
        }
    }
}

impl<V: Codec + ByteSized> Codec for KeyedState<V> {
    fn encoded_len_hint(&self) -> usize {
        self.encoded_len()
    }

    fn encode(&self, enc: &mut Enc) {
        enc.u32(self.map.len() as u32);
        for (k, v) in &self.map {
            enc.u64(*k);
            v.encode(enc);
        }
    }

    fn decode(dec: &mut Dec<'_>) -> Result<Self, DecodeError> {
        let n = dec.u32()? as usize;
        let mut s = Self::new();
        for _ in 0..n {
            let k = dec.u64()?;
            let v = V::decode(dec)?;
            s.insert(k, v);
        }
        Ok(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn size_tracking_insert_remove() {
        let mut s: KeyedState<Value> = KeyedState::new();
        s.insert(1, Value::U64(5));
        let sz1 = s.byte_size();
        assert_eq!(sz1, s.recomputed_size());
        s.insert(2, Value::str("hello"));
        assert_eq!(s.byte_size(), s.recomputed_size());
        // overwrite
        s.insert(1, Value::str("a much longer value than before"));
        assert_eq!(s.byte_size(), s.recomputed_size());
        s.remove(2);
        assert_eq!(s.byte_size(), s.recomputed_size());
        s.clear();
        assert_eq!(s.byte_size(), 0);
    }

    #[test]
    fn upsert_accounts_growth() {
        let mut s: KeyedState<Vec<Value>> = KeyedState::new();
        s.upsert(9, Vec::new, |v| v.push(Value::U64(1)));
        s.upsert(9, Vec::new, |v| v.push(Value::str("more data")));
        assert_eq!(s.byte_size(), s.recomputed_size());
        assert_eq!(s.get(9).unwrap().len(), 2);
    }

    #[test]
    fn codec_roundtrip_preserves_size() {
        let mut s: KeyedState<Value> = KeyedState::new();
        for k in 0..20 {
            s.insert(k, Value::Tuple(vec![Value::U64(k), Value::str("x")].into()));
        }
        let bytes = s.to_bytes();
        let back = KeyedState::<Value>::from_bytes(&bytes).unwrap();
        assert_eq!(back.byte_size(), s.byte_size());
        assert_eq!(back.len(), 20);
        assert_eq!(back.get(3), s.get(3));
    }

    #[test]
    fn snapshot_is_insertion_order_independent() {
        let mut a: KeyedState<u64> = KeyedState::new();
        a.insert(1, 10);
        a.insert(2, 20);
        let mut b: KeyedState<u64> = KeyedState::new();
        b.insert(2, 20);
        b.insert(1, 10);
        assert_eq!(a.to_bytes(), b.to_bytes());
    }
}
