//! Logical dataflow graphs and their physical expansion.
//!
//! A [`LogicalGraph`] is a small DAG (plus optional feedback edges for
//! cyclic queries) of operators connected by typed edges. Expanding it with
//! a parallelism `p` yields a [`PhysicalGraph`]: `p` instances per operator
//! (instance `i` of every operator placed on worker `i`, as in the paper's
//! testbed) and the full set of point-to-point channels.

use crate::ids::{ChannelId, InstanceId, OpId, PortId, WorkerId};
use crate::operator::Operator;
use std::fmt;
use std::sync::Arc;

/// How an edge routes records between instance grids.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum EdgeKind {
    /// 1-to-1: instance `i` sends only to instance `i`. No network fan-out.
    Forward,
    /// Key-hash partitioning: instance `i` may send to any instance `j`
    /// chosen by the record key.
    Shuffle,
    /// Every record goes to all instances.
    Broadcast,
    /// A shuffle edge that closes a cycle in the graph (the reachability
    /// query's feedback loop). Treated as shuffle for routing; flagged so
    /// protocols and validators can reason about cyclicity.
    Feedback,
}

impl EdgeKind {
    pub fn is_feedback(&self) -> bool {
        matches!(self, EdgeKind::Feedback)
    }

    /// Does instance `from_idx` have a channel to instance `to_idx`?
    pub fn connects(&self, from_idx: u32, to_idx: u32) -> bool {
        match self {
            EdgeKind::Forward => from_idx == to_idx,
            _ => true,
        }
    }
}

/// Role of an operator in the pipeline.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OpRole {
    /// Reads an external stream (identified by workload stream id).
    Source {
        stream: u32,
    },
    Transform,
    /// Terminal operator; the engine measures end-to-end latency here.
    Sink,
}

/// Factory producing a fresh operator instance for parallel index `i`.
pub type OpFactory = Arc<dyn Fn(u32) -> Box<dyn Operator> + Send + Sync>;

/// A logical operator specification.
#[derive(Clone)]
pub struct LogicalOp {
    pub id: OpId,
    pub name: String,
    pub role: OpRole,
    pub factory: OpFactory,
    /// Base CPU nanoseconds charged per record processed by this operator
    /// (on top of per-byte serialization costs).
    pub work_ns: u64,
}

impl fmt::Debug for LogicalOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("LogicalOp")
            .field("id", &self.id)
            .field("name", &self.name)
            .field("role", &self.role)
            .field("work_ns", &self.work_ns)
            .finish()
    }
}

/// A logical edge between operators.
#[derive(Debug, Clone)]
pub struct LogicalEdge {
    pub from: OpId,
    pub to: OpId,
    pub kind: EdgeKind,
    /// Which input port of `to` this edge feeds (joins use LEFT/RIGHT).
    pub to_port: PortId,
}

/// Error from graph construction.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum GraphError {
    UnknownOp(OpId),
    SourceHasInput(OpId),
    SinkHasOutput(OpId),
    /// A cycle exists using only non-feedback edges. Cycles must be closed
    /// explicitly with [`EdgeKind::Feedback`].
    UndeclaredCycle,
    /// A feedback edge was declared but removing feedback edges still
    /// leaves the graph acyclic — the feedback flag is wrong or unneeded.
    SpuriousFeedback,
    NoSources,
    NoSink,
}

impl fmt::Display for GraphError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GraphError::UnknownOp(id) => write!(f, "edge references unknown operator {id}"),
            GraphError::SourceHasInput(id) => write!(f, "source {id} has an input edge"),
            GraphError::SinkHasOutput(id) => write!(f, "sink {id} has an output edge"),
            GraphError::UndeclaredCycle => {
                write!(f, "graph has a cycle not closed by a Feedback edge")
            }
            GraphError::SpuriousFeedback => write!(f, "feedback edge declared on an acyclic path"),
            GraphError::NoSources => write!(f, "graph has no source operators"),
            GraphError::NoSink => write!(f, "graph has no sink operator"),
        }
    }
}

impl std::error::Error for GraphError {}

/// Builder for [`LogicalGraph`].
#[derive(Default)]
pub struct GraphBuilder {
    ops: Vec<LogicalOp>,
    edges: Vec<LogicalEdge>,
}

impl GraphBuilder {
    pub fn new() -> Self {
        Self::default()
    }

    pub fn source(&mut self, name: &str, stream: u32, work_ns: u64, factory: OpFactory) -> OpId {
        self.add(name, OpRole::Source { stream }, work_ns, factory)
    }

    pub fn op(&mut self, name: &str, work_ns: u64, factory: OpFactory) -> OpId {
        self.add(name, OpRole::Transform, work_ns, factory)
    }

    pub fn sink(&mut self, name: &str, work_ns: u64, factory: OpFactory) -> OpId {
        self.add(name, OpRole::Sink, work_ns, factory)
    }

    fn add(&mut self, name: &str, role: OpRole, work_ns: u64, factory: OpFactory) -> OpId {
        let id = OpId(self.ops.len() as u32);
        self.ops.push(LogicalOp {
            id,
            name: name.to_string(),
            role,
            factory,
            work_ns,
        });
        id
    }

    pub fn connect(&mut self, from: OpId, to: OpId, kind: EdgeKind) -> &mut Self {
        self.connect_port(from, to, kind, PortId(0))
    }

    pub fn connect_port(
        &mut self,
        from: OpId,
        to: OpId,
        kind: EdgeKind,
        port: PortId,
    ) -> &mut Self {
        self.edges.push(LogicalEdge {
            from,
            to,
            kind,
            to_port: port,
        });
        self
    }

    pub fn build(self) -> Result<LogicalGraph, GraphError> {
        LogicalGraph::validate(self.ops, self.edges)
    }
}

/// A validated logical dataflow graph.
#[derive(Clone)]
pub struct LogicalGraph {
    ops: Vec<LogicalOp>,
    edges: Vec<LogicalEdge>,
    cyclic: bool,
}

impl fmt::Debug for LogicalGraph {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("LogicalGraph")
            .field("ops", &self.ops)
            .field("edges", &self.edges)
            .field("cyclic", &self.cyclic)
            .finish()
    }
}

impl LogicalGraph {
    fn validate(ops: Vec<LogicalOp>, edges: Vec<LogicalEdge>) -> Result<Self, GraphError> {
        let n = ops.len();
        let valid = |id: OpId| (id.0 as usize) < n;
        for e in &edges {
            if !valid(e.from) {
                return Err(GraphError::UnknownOp(e.from));
            }
            if !valid(e.to) {
                return Err(GraphError::UnknownOp(e.to));
            }
            if matches!(ops[e.to.0 as usize].role, OpRole::Source { .. }) {
                return Err(GraphError::SourceHasInput(e.to));
            }
            if matches!(ops[e.from.0 as usize].role, OpRole::Sink) {
                return Err(GraphError::SinkHasOutput(e.from));
            }
        }
        if !ops.iter().any(|o| matches!(o.role, OpRole::Source { .. })) {
            return Err(GraphError::NoSources);
        }
        if !ops.iter().any(|o| matches!(o.role, OpRole::Sink)) {
            return Err(GraphError::NoSink);
        }

        // Cycle check on non-feedback edges (Kahn's algorithm).
        let mut indeg = vec![0usize; n];
        let mut adj: Vec<Vec<usize>> = vec![Vec::new(); n];
        for e in edges.iter().filter(|e| !e.kind.is_feedback()) {
            adj[e.from.0 as usize].push(e.to.0 as usize);
            indeg[e.to.0 as usize] += 1;
        }
        let mut queue: Vec<usize> = (0..n).filter(|&i| indeg[i] == 0).collect();
        let mut seen = 0;
        while let Some(u) = queue.pop() {
            seen += 1;
            for &v in &adj[u] {
                indeg[v] -= 1;
                if indeg[v] == 0 {
                    queue.push(v);
                }
            }
        }
        if seen != n {
            return Err(GraphError::UndeclaredCycle);
        }

        // Every feedback edge must actually close a cycle: its target must
        // reach its origin through forward edges.
        let cyclic = edges.iter().any(|e| e.kind.is_feedback());
        for e in edges.iter().filter(|e| e.kind.is_feedback()) {
            if !reaches(&adj, e.to.0 as usize, e.from.0 as usize) {
                return Err(GraphError::SpuriousFeedback);
            }
        }

        Ok(Self { ops, edges, cyclic })
    }

    pub fn ops(&self) -> &[LogicalOp] {
        &self.ops
    }

    pub fn edges(&self) -> &[LogicalEdge] {
        &self.edges
    }

    pub fn op(&self, id: OpId) -> &LogicalOp {
        &self.ops[id.0 as usize]
    }

    /// True when the graph contains a feedback edge (a cyclic query).
    pub fn is_cyclic(&self) -> bool {
        self.cyclic
    }

    pub fn sources(&self) -> impl Iterator<Item = &LogicalOp> {
        self.ops
            .iter()
            .filter(|o| matches!(o.role, OpRole::Source { .. }))
    }

    pub fn sinks(&self) -> impl Iterator<Item = &LogicalOp> {
        self.ops.iter().filter(|o| matches!(o.role, OpRole::Sink))
    }

    /// Expand to a physical graph with uniform parallelism `p`.
    pub fn expand(&self, p: u32) -> PhysicalGraph {
        PhysicalGraph::expand(self, p)
    }
}

fn reaches(adj: &[Vec<usize>], from: usize, to: usize) -> bool {
    let mut stack = vec![from];
    let mut visited = vec![false; adj.len()];
    while let Some(u) = stack.pop() {
        if u == to {
            return true;
        }
        if visited[u] {
            continue;
        }
        visited[u] = true;
        for &v in &adj[u] {
            stack.push(v);
        }
    }
    false
}

/// Dense index of an operator instance within a physical graph.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct InstanceIdx(pub u32);

/// Dense index of a channel within a physical graph.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ChannelIdx(pub u32);

/// A physical channel: one (sender instance, receiver instance) pair of one
/// logical edge.
#[derive(Debug, Clone)]
pub struct ChannelMeta {
    pub idx: ChannelIdx,
    pub id: ChannelId,
    pub from: InstanceIdx,
    pub to: InstanceIdx,
    pub port: PortId,
    pub kind: EdgeKind,
    /// Index of the logical edge this channel belongs to.
    pub edge: usize,
}

/// One output edge of an operator instance, with the channel for each
/// target instance index (dense, length = parallelism; `None` where the
/// edge kind doesn't connect the pair).
#[derive(Debug, Clone)]
pub struct OutEdge {
    pub edge: usize,
    pub kind: EdgeKind,
    pub to_op: OpId,
    pub port: PortId,
    /// `targets[j]` = channel to instance `j` of `to_op`, if connected.
    pub targets: Vec<Option<ChannelIdx>>,
}

/// The physically expanded dataflow.
pub struct PhysicalGraph {
    logical: LogicalGraph,
    parallelism: u32,
    channels: Vec<ChannelMeta>,
    /// Per instance: channels arriving at it, ordered.
    in_channels: Vec<Vec<ChannelIdx>>,
    /// Per instance: out edges (ordered by logical edge declaration order,
    /// which matches `OpCtx::emit_to` indices for that operator).
    out_edges: Vec<Vec<OutEdge>>,
}

impl PhysicalGraph {
    fn expand(logical: &LogicalGraph, p: u32) -> Self {
        assert!(p > 0, "parallelism must be positive");
        let n_ops = logical.ops.len() as u32;
        let n_inst = (n_ops * p) as usize;
        let mut channels = Vec::new();
        let mut in_channels: Vec<Vec<ChannelIdx>> = vec![Vec::new(); n_inst];
        let mut out_edges: Vec<Vec<OutEdge>> = vec![Vec::new(); n_inst];

        let inst_idx = |op: OpId, i: u32| InstanceIdx(op.0 * p + i);

        for (edge_no, e) in logical.edges.iter().enumerate() {
            for i in 0..p {
                let from = inst_idx(e.from, i);
                let mut targets = vec![None; p as usize];
                for j in 0..p {
                    if !e.kind.connects(i, j) {
                        continue;
                    }
                    let to = inst_idx(e.to, j);
                    let idx = ChannelIdx(channels.len() as u32);
                    channels.push(ChannelMeta {
                        idx,
                        id: ChannelId::new(InstanceId::new(e.from, i), InstanceId::new(e.to, j)),
                        from,
                        to,
                        port: e.to_port,
                        kind: e.kind,
                        edge: edge_no,
                    });
                    in_channels[to.0 as usize].push(idx);
                    targets[j as usize] = Some(idx);
                }
                out_edges[from.0 as usize].push(OutEdge {
                    edge: edge_no,
                    kind: e.kind,
                    to_op: e.to,
                    port: e.to_port,
                    targets,
                });
            }
        }

        Self {
            logical: logical.clone(),
            parallelism: p,
            channels,
            in_channels,
            out_edges,
        }
    }

    pub fn logical(&self) -> &LogicalGraph {
        &self.logical
    }

    pub fn parallelism(&self) -> u32 {
        self.parallelism
    }

    /// Total number of operator instances (`n_ops × p`).
    pub fn n_instances(&self) -> usize {
        self.logical.ops.len() * self.parallelism as usize
    }

    pub fn n_channels(&self) -> usize {
        self.channels.len()
    }

    pub fn channel(&self, idx: ChannelIdx) -> &ChannelMeta {
        &self.channels[idx.0 as usize]
    }

    pub fn channels(&self) -> &[ChannelMeta] {
        &self.channels
    }

    pub fn instance_idx(&self, id: InstanceId) -> InstanceIdx {
        InstanceIdx(id.op.0 * self.parallelism + id.index)
    }

    pub fn instance_id(&self, idx: InstanceIdx) -> InstanceId {
        let op = OpId(idx.0 / self.parallelism);
        let index = idx.0 % self.parallelism;
        InstanceId::new(op, index)
    }

    pub fn op_of(&self, idx: InstanceIdx) -> &LogicalOp {
        self.logical.op(self.instance_id(idx).op)
    }

    /// The worker hosting an instance (instance `i` of every op → worker `i`).
    pub fn worker_of(&self, idx: InstanceIdx) -> WorkerId {
        WorkerId(idx.0 % self.parallelism)
    }

    /// Instances hosted on a given worker, in op order.
    pub fn instances_on(&self, w: WorkerId) -> impl Iterator<Item = InstanceIdx> + '_ {
        (0..self.logical.ops.len() as u32).map(move |op| InstanceIdx(op * self.parallelism + w.0))
    }

    pub fn in_channels_of(&self, idx: InstanceIdx) -> &[ChannelIdx] {
        &self.in_channels[idx.0 as usize]
    }

    pub fn out_edges_of(&self, idx: InstanceIdx) -> &[OutEdge] {
        &self.out_edges[idx.0 as usize]
    }

    /// All instances of a logical operator.
    pub fn instances_of(&self, op: OpId) -> impl Iterator<Item = InstanceIdx> + '_ {
        (0..self.parallelism).map(move |i| InstanceIdx(op.0 * self.parallelism + i))
    }

    /// Build the operator instances (one box per instance, in dense order).
    pub fn build_operators(&self) -> Vec<Box<dyn Operator>> {
        let mut out = Vec::with_capacity(self.n_instances());
        for op in &self.logical.ops {
            for i in 0..self.parallelism {
                let _ = op; // keep borrow localized
                out.push((self.logical.ops[op.id.0 as usize].factory)(i));
            }
        }
        out
    }
}

impl fmt::Debug for PhysicalGraph {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("PhysicalGraph")
            .field("parallelism", &self.parallelism)
            .field("n_instances", &self.n_instances())
            .field("n_channels", &self.n_channels())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::operator::OpCtx;
    use crate::record::Record;

    struct Nop;
    impl Operator for Nop {
        fn on_record(&mut self, _p: PortId, r: Record, ctx: &mut OpCtx) {
            ctx.emit(r);
        }
        fn snapshot(&self) -> Vec<u8> {
            Vec::new()
        }
        fn restore(&mut self, _b: &[u8]) -> Result<(), crate::codec::DecodeError> {
            Ok(())
        }
        fn state_size(&self) -> usize {
            0
        }
        fn reset(&mut self) {}
        fn is_stateless(&self) -> bool {
            true
        }
    }

    fn nop_factory() -> OpFactory {
        Arc::new(|_| Box::new(Nop))
    }

    fn linear_graph() -> LogicalGraph {
        let mut b = GraphBuilder::new();
        let src = b.source("src", 0, 100, nop_factory());
        let map = b.op("map", 100, nop_factory());
        let sink = b.sink("sink", 100, nop_factory());
        b.connect(src, map, EdgeKind::Forward);
        b.connect(map, sink, EdgeKind::Shuffle);
        b.build().unwrap()
    }

    #[test]
    fn builds_and_reports_shape() {
        let g = linear_graph();
        assert_eq!(g.ops().len(), 3);
        assert!(!g.is_cyclic());
        assert_eq!(g.sources().count(), 1);
        assert_eq!(g.sinks().count(), 1);
    }

    #[test]
    fn rejects_edge_into_source() {
        let mut b = GraphBuilder::new();
        let src = b.source("src", 0, 0, nop_factory());
        let sink = b.sink("sink", 0, nop_factory());
        b.connect(sink, src, EdgeKind::Forward);
        // sink has output AND source has input; first check hit is source-input.
        let err = b.build().unwrap_err();
        assert!(matches!(
            err,
            GraphError::SourceHasInput(_) | GraphError::SinkHasOutput(_)
        ));
    }

    #[test]
    fn rejects_undeclared_cycle() {
        let mut b = GraphBuilder::new();
        let src = b.source("src", 0, 0, nop_factory());
        let a = b.op("a", 0, nop_factory());
        let c = b.op("c", 0, nop_factory());
        let sink = b.sink("sink", 0, nop_factory());
        b.connect(src, a, EdgeKind::Forward);
        b.connect(a, c, EdgeKind::Shuffle);
        b.connect(c, a, EdgeKind::Shuffle); // cycle, not marked feedback
        b.connect(a, sink, EdgeKind::Forward);
        assert_eq!(b.build().unwrap_err(), GraphError::UndeclaredCycle);
    }

    #[test]
    fn accepts_feedback_cycle() {
        let mut b = GraphBuilder::new();
        let src = b.source("src", 0, 0, nop_factory());
        let a = b.op("a", 0, nop_factory());
        let c = b.op("c", 0, nop_factory());
        let sink = b.sink("sink", 0, nop_factory());
        b.connect(src, a, EdgeKind::Forward);
        b.connect(a, c, EdgeKind::Shuffle);
        b.connect(c, a, EdgeKind::Feedback);
        b.connect(c, sink, EdgeKind::Forward);
        let g = b.build().unwrap();
        assert!(g.is_cyclic());
    }

    #[test]
    fn rejects_spurious_feedback() {
        let mut b = GraphBuilder::new();
        let src = b.source("src", 0, 0, nop_factory());
        let a = b.op("a", 0, nop_factory());
        let sink = b.sink("sink", 0, nop_factory());
        b.connect(src, a, EdgeKind::Feedback); // no path a -> src
        b.connect(a, sink, EdgeKind::Forward);
        assert_eq!(b.build().unwrap_err(), GraphError::SpuriousFeedback);
    }

    #[test]
    fn expansion_counts() {
        let g = linear_graph();
        let p = 4;
        let pg = g.expand(p);
        assert_eq!(pg.n_instances(), 12);
        // forward edge: p channels; shuffle edge: p*p channels
        assert_eq!(pg.n_channels(), (p + p * p) as usize);
        // map instance 2 has exactly one in-channel (forward from src 2)
        let map2 = pg.instance_idx(InstanceId::new(OpId(1), 2));
        assert_eq!(pg.in_channels_of(map2).len(), 1);
        // sink instance has p in-channels (shuffle from all maps)
        let sink1 = pg.instance_idx(InstanceId::new(OpId(2), 1));
        assert_eq!(pg.in_channels_of(sink1).len(), p as usize);
    }

    #[test]
    fn instance_index_roundtrip_and_placement() {
        let g = linear_graph();
        let pg = g.expand(5);
        for op in 0..3u32 {
            for i in 0..5u32 {
                let id = InstanceId::new(OpId(op), i);
                let idx = pg.instance_idx(id);
                assert_eq!(pg.instance_id(idx), id);
                assert_eq!(pg.worker_of(idx), WorkerId(i));
            }
        }
        let on_w2: Vec<_> = pg.instances_on(WorkerId(2)).collect();
        assert_eq!(on_w2.len(), 3); // one instance of each op
    }

    #[test]
    fn out_edge_targets_follow_kind() {
        let g = linear_graph();
        let pg = g.expand(3);
        let src0 = pg.instance_idx(InstanceId::new(OpId(0), 0));
        let oe = &pg.out_edges_of(src0)[0];
        assert_eq!(oe.kind, EdgeKind::Forward);
        assert!(oe.targets[0].is_some());
        assert!(oe.targets[1].is_none());
        let map0 = pg.instance_idx(InstanceId::new(OpId(1), 0));
        let oe = &pg.out_edges_of(map0)[0];
        assert_eq!(oe.kind, EdgeKind::Shuffle);
        assert!(oe.targets.iter().all(Option::is_some));
    }

    #[test]
    fn build_operators_creates_all_instances() {
        let g = linear_graph();
        let pg = g.expand(3);
        let ops = pg.build_operators();
        assert_eq!(ops.len(), 9);
    }
}
