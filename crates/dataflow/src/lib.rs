//! # checkmate-dataflow
//!
//! The streaming dataflow model underlying the CheckMate reproduction:
//! records with dynamic payloads, logical graphs of operators expanded into
//! physical instance grids, and a library of snapshotable operators
//! (map/filter/join/window/aggregate/sink).
//!
//! This crate is engine-agnostic: the virtual-time engine
//! (`checkmate-engine`) and the threaded real-time engine
//! (`checkmate-runtime`) both drive these operators.

pub mod codec;
pub mod graph;
pub mod ids;
pub mod operator;
pub mod ops;
pub mod record;
pub mod state;
pub mod value;

pub use codec::{Codec, Dec, DecodeError, Enc};
pub use graph::{
    ChannelIdx, ChannelMeta, EdgeKind, GraphBuilder, GraphError, InstanceIdx, LogicalGraph,
    LogicalOp, OpFactory, OpRole, OutEdge, PhysicalGraph,
};
pub use ids::{ChannelId, InstanceId, OpId, PortId, WorkerId};
pub use operator::{drive_once, OpCtx, Operator};
pub use record::{mix_key, shuffle_target, Record, Time};
pub use state::{ByteSized, KeyedState};
pub use value::{fnv1a, Value};
