//! Stream records.

use crate::codec::{Codec, Dec, DecodeError, Enc};
use crate::value::Value;

/// Virtual time in nanoseconds. Shared convention across the workspace.
pub type Time = u64;

/// One record flowing through the dataflow.
#[derive(Debug, Clone, PartialEq)]
pub struct Record {
    /// Partition key; shuffle edges route by `key % parallelism` after
    /// mixing. Non-keyed records use key 0 (forward edges ignore the key).
    pub key: u64,
    /// Payload.
    pub value: Value,
    /// Time the record became available in the source queue. End-to-end
    /// latency = sink-processing time − `ingest_time` (paper §V).
    pub ingest_time: Time,
}

impl Record {
    pub fn new(key: u64, value: Value, ingest_time: Time) -> Self {
        Self {
            key,
            value,
            ingest_time,
        }
    }

    /// Derive an output record from this one: same ingest time (latency is
    /// end-to-end from the original source record), new key and payload.
    pub fn derive(&self, key: u64, value: Value) -> Self {
        Self {
            key,
            value,
            ingest_time: self.ingest_time,
        }
    }

    /// Wire size of the record: key + ingest timestamp + payload.
    pub fn encoded_len(&self) -> usize {
        8 + 8 + self.value.encoded_len()
    }
}

impl Codec for Record {
    fn encoded_len_hint(&self) -> usize {
        self.encoded_len()
    }

    fn encode(&self, enc: &mut Enc) {
        enc.u64(self.key).u64(self.ingest_time);
        self.value.encode(enc);
    }

    fn decode(dec: &mut Dec<'_>) -> Result<Self, DecodeError> {
        let key = dec.u64()?;
        let ingest_time = dec.u64()?;
        let value = Value::decode(dec)?;
        Ok(Self {
            key,
            value,
            ingest_time,
        })
    }
}

/// Mixes a raw key so that consecutive keys spread across partitions
/// (splitmix64 finalizer). Shuffle routing uses `mix(key) % p`.
#[inline]
pub fn mix_key(key: u64) -> u64 {
    let mut z = key.wrapping_add(0x9e3779b97f4a7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
    z ^ (z >> 31)
}

/// The shuffle target instance index for `key` at parallelism `p`.
#[inline]
pub fn shuffle_target(key: u64, p: u32) -> u32 {
    debug_assert!(p > 0);
    (mix_key(key) % p as u64) as u32
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip() {
        let r = Record::new(7, Value::tuple(vec![Value::U64(1), Value::str("x")]), 123);
        let bytes = r.to_bytes();
        assert_eq!(Record::from_bytes(&bytes).unwrap(), r);
        assert_eq!(r.encoded_len(), bytes.len());
    }

    #[test]
    fn derive_keeps_ingest_time() {
        let r = Record::new(7, Value::U64(1), 55);
        let d = r.derive(9, Value::U64(2));
        assert_eq!(d.ingest_time, 55);
        assert_eq!(d.key, 9);
    }

    #[test]
    fn shuffle_target_in_range_and_spread() {
        let p = 10;
        let mut seen = std::collections::HashSet::new();
        for k in 0..1000u64 {
            let t = shuffle_target(k, p);
            assert!(t < p);
            seen.insert(t);
        }
        // splitmix64 spreads consecutive keys over all partitions
        assert_eq!(seen.len(), p as usize);
    }

    #[test]
    fn shuffle_is_deterministic() {
        assert_eq!(shuffle_target(42, 7), shuffle_target(42, 7));
    }
}
