//! Property tests for the dataflow substrate: codec totality, size
//! accounting, routing, and digest algebra.

use checkmate_dataflow::ops::digest_of;
use checkmate_dataflow::{shuffle_target, Codec, KeyedState, Record, Value};
use proptest::prelude::*;

fn arb_value() -> impl Strategy<Value = Value> {
    let leaf = prop_oneof![
        Just(Value::Unit),
        any::<u64>().prop_map(Value::U64),
        any::<i64>().prop_map(Value::I64),
        // Totally ordered floats only (NaN breaks PartialEq roundtrips).
        (-1e12f64..1e12).prop_map(Value::F64),
        "[a-z0-9]{0,24}".prop_map(Value::str),
    ];
    leaf.prop_recursive(3, 48, 6, |inner| {
        prop_oneof![
            proptest::collection::vec(inner.clone(), 0..6).prop_map(|v| Value::Tuple(v.into())),
            proptest::collection::vec(inner, 0..6).prop_map(Value::list),
        ]
    })
}

proptest! {
    /// Every value round-trips through the wire codec, and the computed
    /// wire size matches the actual encoding exactly (the cost model
    /// charges for these bytes).
    #[test]
    fn value_codec_roundtrip_and_len(v in arb_value()) {
        let bytes = v.to_bytes();
        prop_assert_eq!(v.encoded_len(), bytes.len());
        prop_assert_eq!(Value::from_bytes(&bytes).unwrap(), v);
    }

    /// Records round-trip with key and ingest time intact.
    #[test]
    fn record_codec_roundtrip(key in any::<u64>(), t in any::<u64>(), v in arb_value()) {
        let r = Record::new(key, v, t);
        let bytes = r.to_bytes();
        prop_assert_eq!(r.encoded_len(), bytes.len());
        prop_assert_eq!(Record::from_bytes(&bytes).unwrap(), r);
    }

    /// Stable hashes are injective enough: encoding equality ⇔ hash
    /// equality on the cases we generate (collisions would break digest
    /// comparisons silently, so surface them here).
    #[test]
    fn stable_hash_matches_encoding_equality(a in arb_value(), b in arb_value()) {
        if a.to_bytes() == b.to_bytes() {
            prop_assert_eq!(a.stable_hash(), b.stable_hash());
        } else {
            prop_assert_ne!(a.stable_hash(), b.stable_hash());
        }
    }

    /// KeyedState's incremental byte accounting never drifts from a full
    /// recomputation, across arbitrary insert/remove/upsert sequences.
    #[test]
    fn keyed_state_size_accounting_never_drifts(
        ops in proptest::collection::vec((any::<u8>(), 0u8..3, arb_value()), 0..60)
    ) {
        let mut s: KeyedState<Value> = KeyedState::new();
        for (key, op, v) in ops {
            let key = key as u64 % 16;
            match op {
                0 => {
                    s.insert(key, v);
                }
                1 => {
                    s.remove(key);
                }
                _ => {
                    s.upsert(key, || Value::Unit, |slot| *slot = v.clone());
                }
            }
            prop_assert_eq!(s.byte_size(), s.recomputed_size());
        }
        // And the snapshot restores to the same accounting.
        let back = KeyedState::<Value>::from_bytes(&s.to_bytes()).unwrap();
        prop_assert_eq!(back.byte_size(), s.byte_size());
    }

    /// Shuffle routing is total and stable over the whole key space.
    #[test]
    fn shuffle_target_total(key in any::<u64>(), p in 1u32..128) {
        let t = shuffle_target(key, p);
        prop_assert!(t < p);
        prop_assert_eq!(t, shuffle_target(key, p));
    }

    /// The sink digest is order-independent and duplicate-sensitive: any
    /// permutation digests equal; any extra copy digests different.
    #[test]
    fn digest_algebra(
        mut recs in proptest::collection::vec(
            (any::<u64>(), arb_value()).prop_map(|(k, v)| Record::new(k, v, 0)),
            1..24
        ),
        rot in any::<usize>(),
    ) {
        let base = digest_of(&recs);
        let r = rot % recs.len();
        recs.rotate_left(r);
        prop_assert_eq!(digest_of(&recs), base);
        recs.push(recs[0].clone());
        prop_assert_ne!(digest_of(&recs), base);
    }

    /// `Operator::snapshot_len` is the *exact* length of the encoded
    /// snapshot for every stateful operator, at any driven state —
    /// sized-only checkpoint accounting prices checkpoints from it, so
    /// any drift would break the oracle equivalence bit-for-bit.
    #[test]
    fn operator_snapshot_len_is_exact(
        recs in proptest::collection::vec(
            (any::<u64>(), arb_value(), any::<bool>()), 0..40
        ),
        window_ns in 1u64..1_000_000,
    ) {
        use checkmate_dataflow::ops::{
            DigestSinkOp, IncrementalJoinOp, KeyedCounterOp, WindowJoinOp, WindowedCountOp,
        };
        use checkmate_dataflow::operator::{OpCtx, Operator};
        use checkmate_dataflow::PortId;
        let mut ops: Vec<Box<dyn Operator>> = vec![
            Box::new(KeyedCounterOp::new()),
            Box::new(IncrementalJoinOp::new()),
            Box::new(WindowJoinOp::new(window_ns)),
            Box::new(WindowedCountOp::new(window_ns)),
            Box::new(DigestSinkOp::new()),
        ];
        let mut ctx = OpCtx::new(0);
        for op in &mut ops {
            for (i, (k, v, left)) in recs.iter().enumerate() {
                let port = if *left { PortId::LEFT } else { PortId::RIGHT };
                op.on_record(port, Record::new(*k, v.clone(), 0), &mut ctx);
                ctx.now = i as u64 * 1_000;
                let _ = ctx.take();
            }
            prop_assert_eq!(op.snapshot_len(), op.snapshot().len());
            // A reset operator reports the fresh snapshot again.
            op.reset();
            prop_assert_eq!(op.snapshot_len(), op.snapshot().len());
        }
    }
}
