//! # CheckMate-RS
//!
//! A from-scratch Rust reproduction of **"CheckMate: Evaluating
//! Checkpointing Protocols for Streaming Dataflows"** (ICDE 2024):
//! the three checkpointing protocol families — coordinated aligned
//! (COOR), uncoordinated with message logging (UNC), and
//! communication-induced (CIC/HMNR, plus a BCS ablation) — implemented as
//! runtime-agnostic state machines and evaluated on a purpose-built
//! streaming dataflow testbed.
//!
//! ## Crate map
//!
//! | Module | Crate | What it is |
//! |---|---|---|
//! | [`core`] | `checkmate-core` | protocol state machines + recovery theory (checkpoint graphs, rollback propagation, Z-paths) |
//! | [`dataflow`] | `checkmate-dataflow` | records, logical/physical graphs, snapshotable operators |
//! | [`sim`] | `checkmate-sim` | deterministic discrete-event kernel and the calibrated cost model |
//! | [`engine`] | `checkmate-engine` | the virtual-time testbed engine (measurement instrument) |
//! | [`runtime`] | `checkmate-runtime` | the threaded wall-clock engine (live playground) |
//! | [`wal`] | `checkmate-wal` | replayable source log (Kafka substitute) + channel logs |
//! | [`storage`] | `checkmate-storage` | durable checkpoint store (MinIO substitute) |
//! | [`nexmark`] | `checkmate-nexmark` | NexMark generator and queries Q1/Q3/Q8/Q12 |
//! | [`cyclic`] | `checkmate-cyclic` | the cyclic reachability query |
//! | [`metrics`] | `checkmate-metrics` | MST search and statistics |
//! | [`mod@bench`] | `checkmate-bench` | experiments regenerating every paper table/figure |
//!
//! ## Quick start
//!
//! ```
//! use checkmate::core::ProtocolKind;
//! use checkmate::engine::{Engine, EngineConfig};
//! use checkmate::nexmark::Query;
//!
//! let workload = Query::Q12.workload(2, 7, None);
//! let cfg = EngineConfig {
//!     parallelism: 2,
//!     protocol: ProtocolKind::Uncoordinated,
//!     total_rate: 800.0,
//!     duration: 4_000_000_000,  // 4 virtual seconds
//!     warmup: 1_000_000_000,
//!     ..EngineConfig::default()
//! };
//! let report = Engine::new(&workload, cfg).run();
//! assert!(report.sink_records > 0);
//! ```

pub use checkmate_bench as bench;
pub use checkmate_core as core;
pub use checkmate_cyclic as cyclic;
pub use checkmate_dataflow as dataflow;
pub use checkmate_engine as engine;
pub use checkmate_metrics as metrics;
pub use checkmate_nexmark as nexmark;
pub use checkmate_runtime as runtime;
pub use checkmate_sim as sim;
pub use checkmate_storage as storage;
pub use checkmate_wal as wal;
