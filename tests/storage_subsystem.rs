//! Storage-subsystem acceptance tests on the virtual-time engine:
//! incremental checkpoints cut uploaded bytes without changing what is
//! computed, recovery works from chunked snapshots, and the declared
//! storage profile — not a flat constant — drives checkpoint durations.

use checkmate::core::{ChunkerConfig, IncrementalPolicy, ProtocolKind};
use checkmate::dataflow::WorkerId;
use checkmate::engine::config::FailureSpec;
use checkmate::engine::report::Outcome;
use checkmate::engine::{Engine, EngineConfig, RunReport};
use checkmate::nexmark::Query;
use checkmate::storage::StorageProfile;

const SECONDS: u64 = 1_000_000_000;
const MILLIS: u64 = 1_000_000;

/// Bounded windowed NexMark run (Q8: tumbling-window join, the workload
/// with real per-instance state). Both variants process the exact same
/// record multiset, so sink digests must be equal.
fn q8_cfg(incremental: Option<IncrementalPolicy>, fail: bool) -> EngineConfig {
    EngineConfig {
        parallelism: 2,
        protocol: ProtocolKind::Uncoordinated,
        total_rate: 1_600.0,
        checkpoint_interval: 500 * MILLIS,
        duration: 120 * SECONDS,
        warmup: 2 * SECONDS,
        input_limit: Some(3_000),
        incremental,
        failure: fail.then_some(FailureSpec {
            at: 6 * SECONDS,
            worker: WorkerId(0),
        }),
        ..EngineConfig::default()
    }
}

fn fine_grained() -> IncrementalPolicy {
    IncrementalPolicy {
        chunking: ChunkerConfig::with_avg(256),
        rebase_every: 32,
    }
}

fn run_q8(incremental: Option<IncrementalPolicy>, fail: bool) -> RunReport {
    let wl = Query::Q8.workload(2, 7, None);
    Engine::new(&wl, q8_cfg(incremental, fail)).run()
}

/// ISSUE 2 acceptance: incremental checkpoints reduce `bytes_put` by
/// ≥ 40 % versus full snapshots on a windowed NexMark workload, with
/// identical sink digests.
#[test]
fn incremental_checkpoints_cut_uploaded_bytes_by_40_pct() {
    let full = run_q8(None, false);
    let incr = run_q8(Some(fine_grained()), false);
    assert_eq!(full.outcome, Outcome::Drained, "{}", full.summary());
    assert_eq!(incr.outcome, Outcome::Drained, "{}", incr.summary());
    assert_eq!(
        full.sink_digest,
        incr.sink_digest,
        "checkpoint mode changed WHAT was computed\nfull: {}\nincr: {}",
        full.summary(),
        incr.summary()
    );
    assert!(incr.checkpoints_total > 10, "{}", incr.summary());
    let (fb, ib) = (full.store.bytes_put, incr.store.bytes_put);
    assert!(
        (ib as f64) <= 0.60 * fb as f64,
        "incremental uploads not small enough: {ib} vs {fb} bytes ({:.1}% reduction)",
        100.0 * (1.0 - ib as f64 / fb as f64)
    );
}

/// Exactly-once under failure with incremental checkpoints: recovery
/// reassembles chunked snapshots (resolving chunk chains across owner
/// checkpoints) and replays to the same digest as a failure-free run.
#[test]
fn incremental_checkpoints_recover_exactly_once() {
    let clean = run_q8(Some(fine_grained()), false);
    let failed = run_q8(Some(fine_grained()), true);
    assert_eq!(clean.outcome, Outcome::Drained);
    assert_eq!(failed.outcome, Outcome::Drained, "{}", failed.summary());
    assert!(failed.detected_at.is_some() && failed.restart_time_ns.is_some());
    assert_eq!(
        failed.sink_digest,
        clean.sink_digest,
        "incremental recovery lost or duplicated records\nclean:  {}\nfailed: {}",
        clean.summary(),
        failed.summary()
    );
}

/// Incremental mode keeps the engine deterministic: same config + seed,
/// bit-identical run.
#[test]
fn incremental_runs_are_deterministic() {
    let a = run_q8(Some(fine_grained()), true);
    let b = run_q8(Some(fine_grained()), true);
    assert_eq!(a.events, b.events);
    assert_eq!(a.sink_digest, b.sink_digest);
    assert_eq!(a.store.bytes_put, b.store.bytes_put);
    assert_eq!(a.store.puts, b.store.puts);
}

/// The engine prices storage from the backend's declared profile: a
/// WAN-class store must stretch checkpoint durations and restart time
/// versus a RAM-class one, with identical computation results.
#[test]
fn storage_profile_drives_checkpoint_and_restart_costs() {
    let run_with = |profile: StorageProfile| {
        let wl = Query::Q8.workload(2, 7, None);
        let cfg = EngineConfig {
            storage: profile,
            ..q8_cfg(None, true)
        };
        Engine::new(&wl, cfg).run()
    };
    let ram = run_with(StorageProfile::ram());
    let wan = run_with(StorageProfile::s3_wan());
    assert_eq!(ram.sink_digest, wan.sink_digest);
    assert!(
        wan.avg_checkpoint_time_ns > ram.avg_checkpoint_time_ns,
        "wan ckpt {} ≤ ram ckpt {}",
        wan.avg_checkpoint_time_ns,
        ram.avg_checkpoint_time_ns
    );
    assert!(
        wan.restart_time_ns.unwrap() > ram.restart_time_ns.unwrap(),
        "wan restart {:?} ≤ ram restart {:?}",
        wan.restart_time_ns,
        ram.restart_time_ns
    );
    assert_eq!(ram.store_profile, "ram");
    assert_eq!(wan.store_profile, "s3-wan");
}

/// GC keeps the durable footprint bounded in incremental mode: chunks of
/// reclaimed checkpoints disappear unless a retained manifest still
/// references them, so live bytes stay near a few retained snapshots,
/// not the whole upload history.
#[test]
fn incremental_gc_bounds_live_footprint() {
    let r = run_q8(Some(fine_grained()), false);
    assert!(
        r.store.bytes_deleted > 0,
        "GC never deleted: {}",
        r.summary()
    );
    assert!(
        r.store_bytes_live <= r.store.bytes_put,
        "live {} > put {}",
        r.store_bytes_live,
        r.store.bytes_put
    );
    let accounted = r.store.net_bytes();
    assert_eq!(
        accounted, r.store_bytes_live as i64,
        "put − deleted must equal live bytes (accounting drift)"
    );
}
