//! The paper's headline experimental claims, asserted end-to-end at a
//! scaled-down configuration through the public facade. Each test names
//! the claim it pins (paper §VII-B / §IX).

use checkmate::core::ProtocolKind;
use checkmate::engine::{Engine, EngineConfig};
use checkmate::nexmark::{Query, Skew};

const SEC: u64 = 1_000_000_000;

fn steady(
    q: Query,
    protocol: ProtocolKind,
    parallelism: u32,
    rate_pw: f64,
    skew: Option<Skew>,
) -> checkmate::engine::RunReport {
    let workload = q.workload(parallelism, 11, skew);
    let cfg = EngineConfig {
        parallelism,
        protocol,
        total_rate: rate_pw * parallelism as f64,
        checkpoint_interval: 2 * SEC,
        duration: 14 * SEC,
        warmup: 5 * SEC,
        ..EngineConfig::default()
    };
    Engine::new(&workload, cfg).run()
}

/// "Under uniformly distributed workloads, the coordinated approach
/// outperforms all other approaches" — COOR sustains at least UNC's and
/// CIC's rate and carries no message overhead.
#[test]
fn claim_coordinated_wins_uniform_workloads() {
    use checkmate::bench::{Harness, Scale, Wl};
    let h = Harness::new(Scale::quick());
    for q in [Query::Q1, Query::Q12] {
        let coor = h.mst(Wl::Nexmark(q), ProtocolKind::Coordinated, 4);
        let unc = h.mst(Wl::Nexmark(q), ProtocolKind::Uncoordinated, 4);
        let cic = h.mst(Wl::Nexmark(q), ProtocolKind::CommunicationInduced, 4);
        assert!(coor >= unc, "{}: COOR {coor} < UNC {unc}", q.name());
        assert!(unc > cic, "{}: UNC {unc} ≤ CIC {cic}", q.name());
        // "the uncoordinated approach … remains competitive": within ~15 %.
        assert!(
            unc >= 0.85 * coor,
            "{}: UNC {unc} not competitive with {coor}",
            q.name()
        );
    }
}

/// "Under skewed workloads, the uncoordinated approach outperforms the
/// coordinated one" — COOR's checkpointing time inflates by orders of
/// magnitude with the hot-item ratio while UNC's stays flat.
#[test]
fn claim_uncoordinated_wins_under_skew() {
    let rate = 1_150.0;
    let coor_uniform = steady(Query::Q12, ProtocolKind::Coordinated, 4, rate, None);
    let coor_skew = steady(
        Query::Q12,
        ProtocolKind::Coordinated,
        4,
        rate,
        Skew::hot(0.3),
    );
    let unc_skew = steady(
        Query::Q12,
        ProtocolKind::Uncoordinated,
        4,
        rate,
        Skew::hot(0.3),
    );
    assert!(
        coor_skew.avg_checkpoint_time_ns > 10 * coor_uniform.avg_checkpoint_time_ns,
        "COOR CT under skew {}ms vs uniform {}ms",
        coor_skew.avg_checkpoint_time_ns / 1_000_000,
        coor_uniform.avg_checkpoint_time_ns / 1_000_000
    );
    assert!(
        unc_skew.avg_checkpoint_time_ns < coor_skew.avg_checkpoint_time_ns / 50,
        "UNC CT {}ms should be orders below COOR {}ms",
        unc_skew.avg_checkpoint_time_ns / 1_000_000,
        coor_skew.avg_checkpoint_time_ns / 1_000_000
    );
}

/// "The communication-induced approach is not competitive in any scenario
/// due to its large message overhead."
#[test]
fn claim_cic_pays_for_piggybacks() {
    let cic = steady(
        Query::Q1,
        ProtocolKind::CommunicationInduced,
        4,
        900.0,
        None,
    );
    let unc = steady(Query::Q1, ProtocolKind::Uncoordinated, 4, 900.0, None);
    assert!(
        cic.overhead_ratio() > 1.3,
        "CIC overhead {}",
        cic.overhead_ratio()
    );
    assert!(
        unc.overhead_ratio() < 1.05,
        "UNC overhead {}",
        unc.overhead_ratio()
    );
}

/// "The uncoordinated approach in practice does not suffer from the
/// (theoretical) domino effect in any of our experiments" — on the
/// paper's sparse cyclic configuration the rollback stays shallow.
#[test]
fn claim_no_domino_on_sparse_cyclic_query() {
    use checkmate::dataflow::WorkerId;
    let workload = checkmate::cyclic::reachability(3, 13, checkmate::cyclic::DEFAULT_NODES);
    let cfg = EngineConfig {
        parallelism: 3,
        protocol: ProtocolKind::Uncoordinated,
        total_rate: 540.0,
        checkpoint_interval: 2 * SEC,
        duration: 12 * SEC,
        warmup: 4 * SEC,
        failure: Some(checkmate::engine::FailureSpec {
            at: 9 * SEC,
            worker: WorkerId(1),
        }),
        ..EngineConfig::default()
    };
    let r = Engine::new(&workload, cfg).run();
    assert!(r.checkpoints_total > 0);
    assert!(
        (r.checkpoints_invalid as f64) < 0.34 * r.checkpoints_total as f64,
        "domino: {}/{} invalid",
        r.checkpoints_invalid,
        r.checkpoints_total
    );
}

/// Exactly-once semantics (Definition 3): state changes are reflected
/// exactly once in checkpointed state even across failures — while
/// duplicate *outputs* can reach external observers (§II-A).
#[test]
fn claim_exactly_once_processing_not_output() {
    use checkmate::dataflow::WorkerId;
    let run = |fail: bool| {
        let workload = Query::Q12.workload(3, 11, None);
        let cfg = EngineConfig {
            parallelism: 3,
            protocol: ProtocolKind::Coordinated,
            total_rate: 3_000.0,
            checkpoint_interval: SEC,
            duration: 9 * SEC,
            warmup: SEC,
            input_limit: Some(1_500),
            // Mid-stream, well before the bounded input drains.
            failure: fail.then_some(checkmate::engine::FailureSpec {
                at: SEC / 2,
                worker: WorkerId(0),
            }),
            ..EngineConfig::default()
        };
        Engine::new(&workload, cfg).run()
    };
    let clean = run(false);
    let failed = run(true);
    assert_eq!(
        clean.sink_digest, failed.sink_digest,
        "processing not exactly-once"
    );
    assert_eq!(clean.output_duplicates, 0);
    assert!(
        failed.output_duplicates > 0,
        "rollback re-emission should duplicate outputs"
    );
}
