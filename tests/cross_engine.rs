//! Cross-engine validation: the virtual-time engine and the threaded
//! wall-clock engine run the same operators, the same protocol state
//! machines, and the same bounded input — their sink digests must agree
//! bit-for-bit, with and without failures.

use checkmate::core::ProtocolKind;
use checkmate::dataflow::ops::{DigestSinkOp, KeyedCounterOp, PassThroughOp};
use checkmate::dataflow::{EdgeKind, GraphBuilder, LogicalGraph, WorkerId};
use checkmate::engine::{Engine, EngineConfig, FailureSpec};
use checkmate::nexmark::BidStream;
use checkmate::runtime::{run_live, LiveConfig};
use checkmate::wal::EventStream;
use std::sync::Arc;
use std::time::Duration;

const SEC: u64 = 1_000_000_000;
const PARALLELISM: u32 = 3;
const LIMIT: u64 = 1_200;

fn graph() -> LogicalGraph {
    let mut b = GraphBuilder::new();
    let src = b.source("src", 0, 120_000, Arc::new(|_| Box::new(PassThroughOp)));
    let cnt = b.op(
        "count",
        220_000,
        Arc::new(|_| Box::new(KeyedCounterOp::new())),
    );
    let sink = b.sink("sink", 90_000, Arc::new(|_| Box::new(DigestSinkOp::new())));
    b.connect(src, cnt, EdgeKind::Shuffle);
    b.connect(cnt, sink, EdgeKind::Forward);
    b.build().unwrap()
}

fn stream() -> Arc<dyn EventStream> {
    Arc::new(BidStream::new(PARALLELISM, 99, None))
}

fn virtual_digest(protocol: ProtocolKind, fail: bool) -> checkmate::dataflow::ops::Digest {
    let workload = checkmate::engine::workload::Workload {
        name: "cross".into(),
        graph: graph(),
        streams: vec![checkmate::engine::workload::StreamSpec {
            stream: stream(),
            rate_share: 1.0,
        }],
    };
    let cfg = EngineConfig {
        parallelism: PARALLELISM,
        protocol,
        total_rate: 1_500.0 * PARALLELISM as f64,
        checkpoint_interval: SEC,
        duration: 120 * SEC,
        warmup: SEC,
        input_limit: Some(LIMIT),
        failure: fail.then_some(FailureSpec {
            at: SEC,
            worker: WorkerId(1),
        }),
        ..EngineConfig::default()
    };
    let r = Engine::new(&workload, cfg).run();
    assert_eq!(
        r.sink_digest.count,
        LIMIT * PARALLELISM as u64,
        "virtual engine did not process the whole bounded input: {}",
        r.summary()
    );
    r.sink_digest
}

fn live_digest(protocol: ProtocolKind, kill: Option<u32>) -> checkmate::dataflow::ops::Digest {
    let r = run_live(
        &graph(),
        vec![stream()],
        LiveConfig {
            parallelism: PARALLELISM,
            protocol,
            rate_per_partition: 3_000.0,
            records_per_partition: LIMIT,
            checkpoint_interval: Duration::from_millis(120),
            kill_worker: kill,
            timeout: Duration::from_secs(60),
            ..LiveConfig::default()
        },
    );
    assert_eq!(r.sink_digest.count, LIMIT * PARALLELISM as u64);
    r.sink_digest
}

#[test]
fn virtual_and_live_engines_agree_failure_free() {
    let v = virtual_digest(ProtocolKind::Coordinated, false);
    let l = live_digest(ProtocolKind::Coordinated, None);
    assert_eq!(v, l, "engines disagree on identical bounded input");
}

#[test]
fn virtual_and_live_engines_agree_across_failures() {
    // Failures at different (virtual vs wall-clock) instants, different
    // engines — exactly-once means the digests still all match.
    let reference = virtual_digest(ProtocolKind::Uncoordinated, false);
    assert_eq!(virtual_digest(ProtocolKind::Uncoordinated, true), reference);
    assert_eq!(live_digest(ProtocolKind::Uncoordinated, Some(0)), reference);
    assert_eq!(
        virtual_digest(ProtocolKind::CommunicationInduced, true),
        reference
    );
}
