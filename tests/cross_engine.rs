//! Cross-engine validation: the virtual-time engine and the threaded
//! wall-clock engine run the same operators, the same protocol state
//! machines, and the same bounded input — their sink digests must agree
//! bit-for-bit, with and without failures.

use checkmate::core::{BrownoutWindow, FaultPlan, KillEvent, ProtocolKind};
use checkmate::dataflow::ops::{DigestSinkOp, KeyedCounterOp, PassThroughOp};
use checkmate::dataflow::{EdgeKind, GraphBuilder, LogicalGraph, WorkerId};
use checkmate::engine::{Engine, EngineConfig, FailureSpec};
use checkmate::nexmark::BidStream;
use checkmate::runtime::{run_live, LiveConfig};
use checkmate::wal::EventStream;
use std::sync::Arc;
use std::time::Duration;

const SEC: u64 = 1_000_000_000;
const MS: u64 = 1_000_000;
const PARALLELISM: u32 = 3;
const LIMIT: u64 = 1_200;

fn graph() -> LogicalGraph {
    let mut b = GraphBuilder::new();
    let src = b.source("src", 0, 120_000, Arc::new(|_| Box::new(PassThroughOp)));
    let cnt = b.op(
        "count",
        220_000,
        Arc::new(|_| Box::new(KeyedCounterOp::new())),
    );
    let sink = b.sink("sink", 90_000, Arc::new(|_| Box::new(DigestSinkOp::new())));
    b.connect(src, cnt, EdgeKind::Shuffle);
    b.connect(cnt, sink, EdgeKind::Forward);
    b.build().unwrap()
}

fn stream() -> Arc<dyn EventStream> {
    Arc::new(BidStream::new(PARALLELISM, 99, None))
}

fn virtual_digest(protocol: ProtocolKind, fail: bool) -> checkmate::dataflow::ops::Digest {
    let workload = checkmate::engine::workload::Workload {
        name: "cross".into(),
        graph: graph(),
        streams: vec![checkmate::engine::workload::StreamSpec {
            stream: stream(),
            rate_share: 1.0,
        }],
    };
    let cfg = EngineConfig {
        parallelism: PARALLELISM,
        protocol,
        total_rate: 1_500.0 * PARALLELISM as f64,
        checkpoint_interval: SEC,
        duration: 120 * SEC,
        warmup: SEC,
        input_limit: Some(LIMIT),
        failure: fail.then_some(FailureSpec {
            at: SEC,
            worker: WorkerId(1),
        }),
        ..EngineConfig::default()
    };
    let r = Engine::new(&workload, cfg).run();
    assert_eq!(
        r.sink_digest.count,
        LIMIT * PARALLELISM as u64,
        "virtual engine did not process the whole bounded input: {}",
        r.summary()
    );
    r.sink_digest
}

fn live_digest(protocol: ProtocolKind, kill: Option<u32>) -> checkmate::dataflow::ops::Digest {
    let r = run_live(
        &graph(),
        vec![stream()],
        LiveConfig {
            parallelism: PARALLELISM,
            protocol,
            rate_per_partition: 3_000.0,
            records_per_partition: LIMIT,
            checkpoint_interval: Duration::from_millis(120),
            kill_worker: kill,
            timeout: Duration::from_secs(60),
            ..LiveConfig::default()
        },
    );
    assert_eq!(r.sink_digest.count, LIMIT * PARALLELISM as u64);
    r.sink_digest
}

#[test]
fn virtual_and_live_engines_agree_failure_free() {
    let v = virtual_digest(ProtocolKind::Coordinated, false);
    let l = live_digest(ProtocolKind::Coordinated, None);
    assert_eq!(v, l, "engines disagree on identical bounded input");
}

/// The same [`FaultPlan`] — three overlapping kills plus a storage
/// brownout — fed to both engines. The kills hit different phases of
/// each run (virtual vs wall clock), which is the point: exactly-once
/// means every recovery converges on the same bounded-input digest.
#[test]
fn virtual_and_live_engines_agree_under_failure_storm() {
    let plan = FaultPlan {
        seed: 0,
        kills: vec![
            KillEvent {
                at_ns: 300 * MS,
                worker: 0,
            },
            KillEvent {
                at_ns: 350 * MS,
                worker: 1,
            },
            KillEvent {
                at_ns: 520 * MS,
                worker: 2,
            },
        ],
        stragglers: Vec::new(),
        brownouts: vec![BrownoutWindow {
            from_ns: 450 * MS,
            until_ns: 700 * MS,
            put_fail_p: 0.5,
            get_fail_p: 0.2,
            extra_latency_ns: MS,
        }],
    };
    let reference = virtual_digest(ProtocolKind::Uncoordinated, false);

    let workload = checkmate::engine::workload::Workload {
        name: "cross-storm".into(),
        graph: graph(),
        streams: vec![checkmate::engine::workload::StreamSpec {
            stream: stream(),
            rate_share: 1.0,
        }],
    };
    let v = Engine::new(
        &workload,
        EngineConfig {
            parallelism: PARALLELISM,
            protocol: ProtocolKind::Uncoordinated,
            total_rate: 1_500.0 * PARALLELISM as f64,
            checkpoint_interval: SEC,
            duration: 120 * SEC,
            warmup: SEC,
            input_limit: Some(LIMIT),
            storm: Some(plan.clone()),
            ..EngineConfig::default()
        },
    )
    .run();
    assert!(
        v.recoveries >= 1,
        "virtual storm never recovered: {}",
        v.summary()
    );
    assert_eq!(
        v.sink_digest,
        reference,
        "virtual engine diverged under storm: {}",
        v.summary()
    );

    let l = run_live(
        &graph(),
        vec![stream()],
        LiveConfig {
            parallelism: PARALLELISM,
            protocol: ProtocolKind::Uncoordinated,
            rate_per_partition: 1_500.0,
            records_per_partition: LIMIT,
            checkpoint_interval: Duration::from_millis(120),
            storm: Some(plan),
            timeout: Duration::from_secs(60),
            ..LiveConfig::default()
        },
    );
    assert!(
        l.recoveries >= 1,
        "live storm never recovered: {}",
        l.summary()
    );
    assert_eq!(
        l.sink_digest,
        reference,
        "live runtime diverged under storm: {}",
        l.summary()
    );
}

#[test]
fn virtual_and_live_engines_agree_across_failures() {
    // Failures at different (virtual vs wall-clock) instants, different
    // engines — exactly-once means the digests still all match.
    let reference = virtual_digest(ProtocolKind::Uncoordinated, false);
    assert_eq!(virtual_digest(ProtocolKind::Uncoordinated, true), reference);
    assert_eq!(live_digest(ProtocolKind::Uncoordinated, Some(0)), reference);
    assert_eq!(
        virtual_digest(ProtocolKind::CommunicationInduced, true),
        reference
    );
}

/// The protocol data-plane knobs — staged shared-log appends
/// (`buffered_logs`) and claim-journal work stealing (`steal_sources`)
/// — are transport choices, not semantics: under one shared config
/// every {staged, locked-oracle} x {steal on, steal off} live digest
/// matches the virtual-time engine bit for bit.
#[test]
fn live_transport_ablation_agrees_with_virtual_engine() {
    let reference = virtual_digest(ProtocolKind::Uncoordinated, false);
    for (buffered, steal) in [(true, false), (false, false), (true, true), (false, true)] {
        let r = run_live(
            &graph(),
            vec![stream()],
            LiveConfig {
                parallelism: PARALLELISM,
                protocol: ProtocolKind::Uncoordinated,
                rate_per_partition: 3_000.0,
                records_per_partition: LIMIT,
                checkpoint_interval: Duration::from_millis(120),
                timeout: Duration::from_secs(60),
                buffered_logs: buffered,
                steal_sources: steal,
                ..LiveConfig::default()
            },
        );
        assert_eq!(
            r.sink_digest,
            reference,
            "buffered={buffered} steal={steal}: live transport diverged \
             from the virtual engine: {}",
            r.summary()
        );
    }
}
