//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no crates.io access, so this vendor crate
//! implements exactly the subset `checkmate-sim` uses: `SmallRng`
//! seeded via [`SeedableRng::seed_from_u64`] and the [`Rng`] methods
//! `gen`, `gen_range`, and `gen_bool`. The generator is xoshiro256++
//! over a splitmix64-expanded seed — the same construction the real
//! `SmallRng` uses on 64-bit targets — so streams are deterministic,
//! well mixed, and stable across runs (which the simulator's
//! reproducibility story depends on; it never needs cryptographic
//! strength).

pub mod rngs {
    /// A small, fast, non-cryptographic PRNG (xoshiro256++).
    #[derive(Debug, Clone)]
    pub struct SmallRng {
        pub(crate) s: [u64; 4],
    }
}

use rngs::SmallRng;

/// Seeding support (`seed_from_u64` subset).
pub trait SeedableRng: Sized {
    fn seed_from_u64(seed: u64) -> Self;
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl SeedableRng for SmallRng {
    fn seed_from_u64(seed: u64) -> Self {
        let mut st = seed;
        Self {
            s: [
                splitmix64(&mut st),
                splitmix64(&mut st),
                splitmix64(&mut st),
                splitmix64(&mut st),
            ],
        }
    }
}

impl SmallRng {
    fn next_u64(&mut self) -> u64 {
        let s = &mut self.s;
        let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }
}

/// A type that can be sampled uniformly by [`Rng::gen`].
pub trait Standard: Sized {
    fn sample(rng: &mut SmallRng) -> Self;
}

impl Standard for u64 {
    fn sample(rng: &mut SmallRng) -> Self {
        rng.next_u64()
    }
}

impl Standard for f64 {
    fn sample(rng: &mut SmallRng) -> Self {
        // 53 random mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// A range usable with [`Rng::gen_range`].
pub trait SampleRange<T> {
    fn sample(self, rng: &mut SmallRng) -> T;
}

fn uniform_below(rng: &mut SmallRng, n: u64) -> u64 {
    debug_assert!(n > 0);
    // Rejection sampling from the top bits to avoid modulo bias.
    let zone = u64::MAX - (u64::MAX - n + 1) % n;
    loop {
        let v = rng.next_u64();
        if v <= zone {
            return v % n;
        }
    }
}

macro_rules! int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for ::std::ops::Range<$t> {
            fn sample(self, rng: &mut SmallRng) -> $t {
                assert!(self.start < self.end, "empty gen_range");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + uniform_below(rng, span) as i128) as $t
            }
        }
        impl SampleRange<$t> for ::std::ops::RangeInclusive<$t> {
            fn sample(self, rng: &mut SmallRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty gen_range");
                let span = (hi as i128 - lo as i128 + 1) as u64;
                if span == 0 {
                    // Full-width inclusive range.
                    return rng.next_u64() as $t;
                }
                (lo as i128 + uniform_below(rng, span) as i128) as $t
            }
        }
    )*};
}

int_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleRange<f64> for ::std::ops::Range<f64> {
    fn sample(self, rng: &mut SmallRng) -> f64 {
        assert!(self.start < self.end, "empty gen_range");
        self.start + f64::sample(rng) * (self.end - self.start)
    }
}

/// The subset of `rand::Rng` the workspace uses.
pub trait Rng {
    fn gen<T: Standard>(&mut self) -> T;
    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T;
    fn gen_bool(&mut self, p: f64) -> bool;
}

impl Rng for SmallRng {
    fn gen<T: Standard>(&mut self) -> T {
        T::sample(self)
    }

    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T {
        range.sample(self)
    }

    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool p out of range");
        f64::sample(self) < p
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_streams() {
        let mut a = SmallRng::seed_from_u64(42);
        let mut b = SmallRng::seed_from_u64(42);
        for _ in 0..64 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn ranges_in_bounds() {
        let mut r = SmallRng::seed_from_u64(7);
        for _ in 0..1000 {
            let x: u64 = r.gen_range(10u64..20);
            assert!((10..20).contains(&x));
            let y: i64 = r.gen_range(-5i64..=5);
            assert!((-5..=5).contains(&y));
            let f: f64 = r.gen();
            assert!((0.0..1.0).contains(&f));
        }
    }

    #[test]
    fn gen_bool_extremes() {
        let mut r = SmallRng::seed_from_u64(9);
        assert!(!(0..100).any(|_| r.gen_bool(0.0)));
        assert!((0..100).all(|_| r.gen_bool(1.0)));
    }
}
