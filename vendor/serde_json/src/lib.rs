//! Offline stand-in for `serde_json`: the `to_string_pretty` entry
//! point over the vendored `serde::Serialize`, matching serde_json's
//! 2-space pretty format for the subset of types the workspace emits.

use serde::ser::JsonWriter;
use serde::Serialize;

/// Error type kept for signature compatibility; serialization through
/// the vendored writer is infallible.
#[derive(Debug)]
pub struct Error(());

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("serde_json shim error (unreachable)")
    }
}

impl std::error::Error for Error {}

pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut w = JsonWriter::new();
    value.write_json(&mut w);
    Ok(w.finish())
}

pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    // The pretty form is the only one the workspace writes; keeping the
    // compact entry point avoids a needless API divergence.
    to_string_pretty(value)
}

#[cfg(test)]
mod tests {
    use super::*;
    use serde::Serialize;

    #[derive(Serialize)]
    struct Row {
        a: u32,
        b: String,
        c: Option<u64>,
    }

    #[derive(Serialize)]
    struct Wrap(u64);

    #[derive(Serialize)]
    struct Outer<R: Serialize> {
        id: String,
        rows: Vec<R>,
    }

    #[test]
    fn derived_struct_pretty() {
        let r = Row {
            a: 1,
            b: "x".into(),
            c: None,
        };
        let s = to_string_pretty(&r).unwrap();
        assert_eq!(s, "{\n  \"a\": 1,\n  \"b\": \"x\",\n  \"c\": null\n}");
    }

    #[test]
    fn newtype_is_transparent() {
        assert_eq!(to_string_pretty(&Wrap(7)).unwrap(), "7");
    }

    #[test]
    fn generic_struct_with_rows() {
        let o = Outer {
            id: "t".into(),
            rows: vec![Wrap(1), Wrap(2)],
        };
        let s = to_string_pretty(&o).unwrap();
        assert!(s.contains("\"id\": \"t\""));
        assert!(s.contains("\"rows\": [\n    1,\n    2\n  ]"));
    }
}
