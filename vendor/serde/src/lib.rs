//! Offline stand-in for `serde`.
//!
//! The real serde models serialization through a generic `Serializer`
//! visitor; this workspace only ever serializes experiment rows to
//! JSON files, so the stand-in collapses the abstraction: [`Serialize`]
//! writes directly into a [`ser::JsonWriter`], and the derive macro
//! (re-exported from the vendored `serde_derive`) emits field-by-field
//! writes for plain structs. [`Deserialize`] is a marker trait — the
//! workspace derives it on identifier types but never reads anything
//! back through serde (the wire codec is hand-rolled in
//! `checkmate-dataflow::codec`).

pub use serde_derive::{Deserialize, Serialize};

/// Types that can be written as JSON. Implemented by the derive macro
/// and, below, for the primitive/container types used in experiment
/// rows.
pub trait Serialize {
    fn write_json(&self, w: &mut ser::JsonWriter);
}

/// Marker counterpart of [`Serialize`]; no data is ever deserialized
/// through this shim.
pub trait Deserialize {}

pub mod ser {
    use super::Serialize;

    /// A pretty-printing JSON emitter (2-space indent, `serde_json`
    /// `to_string_pretty` style).
    #[derive(Debug, Default)]
    pub struct JsonWriter {
        out: String,
        indent: usize,
        /// Whether the current aggregate already has an element (and so
        /// needs a comma before the next one).
        needs_comma: bool,
    }

    impl JsonWriter {
        pub fn new() -> Self {
            Self::default()
        }

        pub fn finish(self) -> String {
            self.out
        }

        fn newline_indent(&mut self) {
            self.out.push('\n');
            for _ in 0..self.indent {
                self.out.push_str("  ");
            }
        }

        fn element_prefix(&mut self) {
            if self.needs_comma {
                self.out.push(',');
            }
            self.newline_indent();
            self.needs_comma = false;
        }

        pub fn begin_object(&mut self) {
            self.out.push('{');
            self.indent += 1;
            self.needs_comma = false;
        }

        pub fn end_object(&mut self) {
            self.indent -= 1;
            if self.needs_comma {
                self.newline_indent();
            }
            self.out.push('}');
            self.needs_comma = true;
        }

        pub fn begin_array(&mut self) {
            self.out.push('[');
            self.indent += 1;
            self.needs_comma = false;
        }

        pub fn end_array(&mut self) {
            self.indent -= 1;
            if self.needs_comma {
                self.newline_indent();
            }
            self.out.push(']');
            self.needs_comma = true;
        }

        /// Start an object entry: emits `"key": ` and leaves the writer
        /// ready for the value.
        pub fn key(&mut self, key: &str) {
            self.element_prefix();
            self.string(key);
            self.out.push_str(": ");
            self.needs_comma = false;
        }

        /// Start an array element.
        pub fn element(&mut self) {
            self.element_prefix();
        }

        pub fn string(&mut self, s: &str) {
            self.out.push('"');
            for c in s.chars() {
                match c {
                    '"' => self.out.push_str("\\\""),
                    '\\' => self.out.push_str("\\\\"),
                    '\n' => self.out.push_str("\\n"),
                    '\r' => self.out.push_str("\\r"),
                    '\t' => self.out.push_str("\\t"),
                    c if (c as u32) < 0x20 => {
                        self.out.push_str(&format!("\\u{:04x}", c as u32));
                    }
                    c => self.out.push(c),
                }
            }
            self.out.push('"');
            self.needs_comma = true;
        }

        pub fn raw(&mut self, s: &str) {
            self.out.push_str(s);
            self.needs_comma = true;
        }

        /// Serialize one object field (used by the derive).
        pub fn field<T: Serialize + ?Sized>(&mut self, key: &str, value: &T) {
            self.key(key);
            value.write_json(self);
        }
    }
}

use ser::JsonWriter;

macro_rules! int_serialize {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn write_json(&self, w: &mut JsonWriter) {
                w.raw(&self.to_string());
            }
        }
    )*};
}

int_serialize!(u8, u16, u32, u64, u128, usize, i8, i16, i32, i64, i128, isize);

impl Serialize for bool {
    fn write_json(&self, w: &mut JsonWriter) {
        w.raw(if *self { "true" } else { "false" });
    }
}

macro_rules! float_serialize {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn write_json(&self, w: &mut JsonWriter) {
                if self.is_finite() {
                    let s = self.to_string();
                    w.raw(&s);
                } else {
                    // serde_json maps non-finite floats to null.
                    w.raw("null");
                }
            }
        }
    )*};
}

float_serialize!(f32, f64);

impl Serialize for str {
    fn write_json(&self, w: &mut JsonWriter) {
        w.string(self);
    }
}

impl Serialize for String {
    fn write_json(&self, w: &mut JsonWriter) {
        w.string(self);
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn write_json(&self, w: &mut JsonWriter) {
        (**self).write_json(w);
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn write_json(&self, w: &mut JsonWriter) {
        match self {
            Some(v) => v.write_json(w),
            None => w.raw("null"),
        }
    }
}

impl<T: Serialize> Serialize for [T] {
    fn write_json(&self, w: &mut JsonWriter) {
        w.begin_array();
        for item in self {
            w.element();
            item.write_json(w);
        }
        w.end_array();
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn write_json(&self, w: &mut JsonWriter) {
        self.as_slice().write_json(w);
    }
}

impl<T: Serialize> Serialize for Box<T> {
    fn write_json(&self, w: &mut JsonWriter) {
        (**self).write_json(w);
    }
}

#[cfg(test)]
mod tests {
    use super::ser::JsonWriter;

    #[test]
    fn scalars_and_containers() {
        let mut w = JsonWriter::new();
        w.begin_object();
        w.field("n", &3u32);
        w.field("s", &"a\"b");
        w.field("none", &Option::<u64>::None);
        w.field("xs", &vec![1u8, 2]);
        w.end_object();
        assert_eq!(
            w.finish(),
            "{\n  \"n\": 3,\n  \"s\": \"a\\\"b\",\n  \"none\": null,\n  \"xs\": [\n    1,\n    2\n  ]\n}"
        );
    }

    #[test]
    fn empty_aggregates() {
        let mut w = JsonWriter::new();
        w.begin_array();
        w.end_array();
        assert_eq!(w.finish(), "[]");
        let mut w = JsonWriter::new();
        w.begin_object();
        w.end_object();
        assert_eq!(w.finish(), "{}");
    }
}
