//! Offline stand-in for `criterion`.
//!
//! Implements the harness surface the fig/tab bench targets use —
//! `criterion_group!`/`criterion_main!`, `benchmark_group`,
//! `sample_size`, `bench_function`, `Bencher::iter` — with plain
//! wall-clock timing and a mean/min report per benchmark. No warm-up
//! schedule, outlier analysis, or HTML reports; bench history here is
//! "read the printed numbers", which is all the reproduction needs to
//! spot hot-path regressions.

use std::time::{Duration, Instant};

pub use std::hint::black_box;

#[derive(Debug, Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            _criterion: self,
            name: name.into(),
            sample_size: 10,
        }
    }

    pub fn bench_function<F>(&mut self, name: &str, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut group = self.benchmark_group(name.to_string());
        group.bench_function("default", f);
        group.finish();
        self
    }
}

pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    pub fn bench_function<F>(&mut self, id: impl Into<String>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let mut bencher = Bencher {
            samples: Vec::with_capacity(self.sample_size),
            iterations_per_sample: 1,
        };
        for _ in 0..self.sample_size {
            f(&mut bencher);
        }
        let samples = &bencher.samples;
        if samples.is_empty() {
            println!("{}/{}: no samples recorded", self.name, id);
            return self;
        }
        let total: Duration = samples.iter().sum();
        let mean = total / samples.len() as u32;
        let min = samples.iter().min().copied().unwrap_or_default();
        println!(
            "{}/{}: mean {:?}, min {:?} over {} samples",
            self.name,
            id,
            mean,
            min,
            samples.len()
        );
        self
    }

    pub fn finish(&mut self) {}
}

pub struct Bencher {
    samples: Vec<Duration>,
    iterations_per_sample: u32,
}

impl Bencher {
    pub fn iter<O, F>(&mut self, mut routine: F)
    where
        F: FnMut() -> O,
    {
        let start = Instant::now();
        for _ in 0..self.iterations_per_sample {
            black_box(routine());
        }
        self.samples
            .push(start.elapsed() / self.iterations_per_sample);
    }
}

/// Matches criterion's signature: defines a function that runs each
/// registered benchmark against one `Criterion` instance.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            // cargo bench passes harness flags (e.g. --bench); nothing
            // to do with them in the stand-in.
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn group_runs_and_reports() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("unit");
        group.sample_size(3);
        let mut runs = 0;
        group.bench_function("noop", |b| {
            b.iter(|| {
                runs += 1;
            })
        });
        group.finish();
        assert_eq!(runs, 3);
    }

    criterion_group!(demo_group, demo_bench);

    fn demo_bench(c: &mut Criterion) {
        c.bench_function("demo", |b| b.iter(|| 1 + 1));
    }

    #[test]
    fn macros_compose() {
        demo_group();
    }
}
