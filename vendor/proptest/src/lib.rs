//! Offline stand-in for `proptest`.
//!
//! The build environment has no crates.io access, so this vendor crate
//! re-implements the proptest surface the workspace's four property
//! suites use: the [`proptest!`]/[`prop_oneof!`]/`prop_assert*` macros,
//! [`strategy::Strategy`] with `prop_map`/`prop_recursive`/`boxed`,
//! range/tuple/string-pattern strategies, `collection::vec`, `any`, and
//! [`test_runner::ProptestConfig`] with `PROPTEST_CASES` bounding.
//!
//! Two deliberate simplifications, both acceptable for a reproduction
//! testbed: failures are not shrunk (they are reproducible — seeds
//! derive from the test name and case index), and string "regex"
//! strategies support only the character-class subset the suites use.

pub mod collection;
pub mod strategy;
pub mod string;
pub mod test_runner;

pub mod prelude {
    pub use crate::strategy::{any, Arbitrary, BoxedStrategy, Just, Strategy, Union};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
}

/// Define property tests. Each `fn name(pat in strategy, ...) { body }`
/// becomes a `#[test]` running `body` over `cases` generated inputs.
#[macro_export]
macro_rules! proptest {
    (
        #![proptest_config($cfg:expr)]
        $($rest:tt)*
    ) => {
        $crate::__proptest_fns!(($cfg) $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::__proptest_fns!(($crate::test_runner::ProptestConfig::default()) $($rest)*);
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_fns {
    (($cfg:expr)) => {};
    (($cfg:expr)
        $(#[$meta:meta])*
        fn $name:ident($($argpat:pat in $strat:expr),+ $(,)?) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let __config: $crate::test_runner::ProptestConfig = $cfg;
            let __cases = __config.resolved_cases();
            for __case in 0..__cases {
                let mut __rng =
                    $crate::test_runner::TestRng::for_case(stringify!($name), __case);
                $(let $argpat =
                    $crate::strategy::Strategy::generate(&($strat), &mut __rng);)+
                let __result: ::std::result::Result<(), ::std::string::String> =
                    (move || {
                        $body
                        ::std::result::Result::Ok(())
                    })();
                if let ::std::result::Result::Err(__msg) = __result {
                    panic!(
                        "proptest {} failed at case {}/{} (set PROPTEST_SEED/PROPTEST_CASES to replay): {}",
                        stringify!($name), __case, __cases, __msg
                    );
                }
            }
        }
        $crate::__proptest_fns!(($cfg) $($rest)*);
    };
}

/// Weighted (`w => strategy`) or uniform choice between strategies.
#[macro_export]
macro_rules! prop_oneof {
    ($($weight:expr => $strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $(($weight as u32, $crate::strategy::Strategy::boxed($strat))),+
        ])
    };
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $((1u32, $crate::strategy::Strategy::boxed($strat))),+
        ])
    };
}

#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !($cond) {
            return ::std::result::Result::Err(format!(
                "assertion failed: {} ({}:{})", stringify!($cond), file!(), line!()
            ));
        }
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !($cond) {
            return ::std::result::Result::Err(format!(
                "assertion failed: {} ({}:{})", format_args!($($fmt)*), file!(), line!()
            ));
        }
    };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        if !(*l == *r) {
            return ::std::result::Result::Err(format!(
                "assertion failed: {} == {}\n  left: {:?}\n right: {:?} ({}:{})",
                stringify!($left), stringify!($right), l, r, file!(), line!()
            ));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (l, r) = (&$left, &$right);
        if !(*l == *r) {
            return ::std::result::Result::Err(format!(
                "assertion failed: {}\n  left: {:?}\n right: {:?} ({}:{})",
                format_args!($($fmt)*), l, r, file!(), line!()
            ));
        }
    }};
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        if *l == *r {
            return ::std::result::Result::Err(format!(
                "assertion failed: {} != {}\n  both: {:?} ({}:{})",
                stringify!($left), stringify!($right), l, file!(), line!()
            ));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (l, r) = (&$left, &$right);
        if *l == *r {
            return ::std::result::Result::Err(format!(
                "assertion failed: {}\n  both: {:?} ({}:{})",
                format_args!($($fmt)*), l, file!(), line!()
            ));
        }
    }};
}

#[cfg(test)]
mod self_tests {
    use crate::prelude::*;

    proptest! {
        #[test]
        fn macro_roundtrip(x in 0u32..100, mut v in crate::collection::vec(0u8..4, 0..8)) {
            prop_assert!(x < 100);
            v.push(0);
            prop_assert_eq!(*v.last().unwrap(), 0u8);
            prop_assert_ne!(v.len(), 0usize);
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(7))]

        #[test]
        fn config_form_compiles(pair in (0u8..3, 0u8..3)) {
            prop_assert!(pair.0 < 3 && pair.1 < 3);
        }
    }

    #[test]
    #[should_panic(expected = "proptest inner failed at case")]
    fn failing_case_reports() {
        // Build the same shape the macro emits, then drive it to failure.
        proptest! {
            #[allow(unused)]
            fn inner(x in 0u8..1) {
                prop_assert_eq!(x, 1u8);
            }
        }
        // `inner` is a plain fn (no #[test] meta given) — call it.
        fn _assert_fn(f: fn()) -> fn() {
            f
        }
        _assert_fn(inner)();
    }
}
