//! `proptest::collection` subset: vectors with a size range.

use crate::strategy::Strategy;
use crate::test_runner::TestRng;
use std::ops::Range;

/// Length bounds for [`vec`]; half-open like proptest's `SizeRange`.
#[derive(Debug, Clone, Copy)]
pub struct SizeRange {
    lo: usize,
    hi: usize,
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> Self {
        assert!(r.start < r.end, "empty vec size range");
        Self {
            lo: r.start,
            hi: r.end,
        }
    }
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        Self { lo: n, hi: n + 1 }
    }
}

pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;

    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        let span = (self.size.hi - self.size.lo) as u64;
        let len = self.size.lo + rng.below(span) as usize;
        (0..len).map(|_| self.element.generate(rng)).collect()
    }
}

pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy {
        element,
        size: size.into(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lengths_respect_bounds() {
        let mut rng = TestRng::new(5);
        let s = vec(0u8..4, 2..7);
        for _ in 0..200 {
            let v = s.generate(&mut rng);
            assert!((2..7).contains(&v.len()));
            assert!(v.iter().all(|&x| x < 4));
        }
    }

    #[test]
    fn fixed_size() {
        let mut rng = TestRng::new(6);
        assert_eq!(vec(0u8..2, 3).generate(&mut rng).len(), 3);
    }
}
