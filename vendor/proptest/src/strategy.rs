//! Strategies: composable deterministic value generators.
//!
//! The real proptest pairs generation with shrinking; the stand-in
//! generates only. Failing cases still reproduce exactly (seeds are
//! per test-name/case), they just aren't minimized.

use crate::string::StringPattern;
use crate::test_runner::TestRng;
use std::ops::{Range, RangeInclusive};
use std::sync::Arc;

pub trait Strategy {
    type Value;

    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Arc::new(self))
    }

    /// Recursive strategies: after `depth` wrapping steps the generator
    /// bottoms out at `self` (the leaf), so generation always
    /// terminates. `desired_size`/`expected_branch_size` shape sizes in
    /// the real proptest; here the per-level leaf/branch coin plus the
    /// bounded depth keeps values small.
    fn prop_recursive<R, F>(
        self,
        depth: u32,
        _desired_size: u32,
        _expected_branch_size: u32,
        f: F,
    ) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
        Self::Value: 'static,
        R: Strategy<Value = Self::Value> + 'static,
        F: Fn(BoxedStrategy<Self::Value>) -> R,
    {
        let leaf = self.boxed();
        let mut cur = leaf.clone();
        for _ in 0..depth {
            let deeper = f(cur).boxed();
            cur = Union::new(vec![(1, leaf.clone()), (1, deeper)]).boxed();
        }
        cur
    }
}

/// A clonable, type-erased strategy (proptest's `BoxedStrategy`, over
/// `Arc` so recursive constructions can reuse branches).
pub struct BoxedStrategy<T>(Arc<dyn Strategy<Value = T>>);

impl<T> Clone for BoxedStrategy<T> {
    fn clone(&self) -> Self {
        Self(self.0.clone())
    }
}

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        self.0.generate(rng)
    }
}

/// Always yields a clone of its value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;

    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// Weighted choice between strategies of one value type (backs
/// `prop_oneof!`).
pub struct Union<T> {
    arms: Vec<(u32, BoxedStrategy<T>)>,
    total: u64,
}

impl<T> Union<T> {
    pub fn new(arms: Vec<(u32, BoxedStrategy<T>)>) -> Self {
        assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
        let total = arms.iter().map(|(w, _)| *w as u64).sum();
        assert!(total > 0, "prop_oneof! weights must not all be zero");
        Self { arms, total }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        let mut pick = rng.below(self.total);
        for (w, s) in &self.arms {
            if pick < *w as u64 {
                return s.generate(rng);
            }
            pick -= *w as u64;
        }
        unreachable!("weights sum covered above")
    }
}

macro_rules! int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + rng.below(span) as i128) as $t
            }
        }

        impl Strategy for RangeInclusive<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = (hi as i128 - lo as i128 + 1) as u64;
                if span == 0 {
                    return rng.next_u64() as $t;
                }
                (lo as i128 + rng.below(span) as i128) as $t
            }
        }
    )*};
}

int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for Range<f64> {
    type Value = f64;

    fn generate(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty range strategy");
        self.start + rng.next_f64() * (self.end - self.start)
    }
}

/// String literals act as regex strategies in proptest; the stand-in
/// supports the character-class/repetition subset the workspace uses
/// (see [`crate::string`]).
impl Strategy for &str {
    type Value = String;

    fn generate(&self, rng: &mut TestRng) -> String {
        StringPattern::parse(self).generate(rng)
    }
}

macro_rules! tuple_strategy {
    ($(($($name:ident),+))*) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    )*};
}

tuple_strategy! {
    (A)
    (A, B)
    (A, B, C)
    (A, B, C, D)
    (A, B, C, D, E)
    (A, B, C, D, E, F)
}

/// `any::<T>()` support.
pub trait Arbitrary: Sized {
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! int_arbitrary {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}

int_arbitrary!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        // Finite, sign-symmetric spread; NaN/inf are opted into
        // explicitly via range strategies when a test wants them.
        (rng.next_f64() - 0.5) * 2e18
    }
}

pub struct Any<T>(std::marker::PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

pub fn any<T: Arbitrary>() -> Any<T> {
    Any(std::marker::PhantomData)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rng() -> TestRng {
        TestRng::new(11)
    }

    #[test]
    fn ranges_and_maps() {
        let mut r = rng();
        let s = (1u32..5).prop_map(|x| x * 10);
        for _ in 0..100 {
            let v = s.generate(&mut r);
            assert!([10, 20, 30, 40].contains(&v));
        }
    }

    #[test]
    fn union_respects_weights() {
        let mut r = rng();
        let s = Union::new(vec![(1, Just(0u8).boxed()), (9, Just(1u8).boxed())]);
        let ones = (0..1000).filter(|_| s.generate(&mut r) == 1).count();
        assert!(ones > 800, "expected ~900 ones, got {ones}");
    }

    #[test]
    fn recursive_terminates() {
        #[derive(Debug, Clone)]
        enum Tree {
            Leaf(u8),
            Node(Vec<Tree>),
        }
        impl Tree {
            /// Depth, asserting every leaf stayed within its strategy's range.
            fn depth(&self) -> usize {
                match self {
                    Tree::Leaf(v) => {
                        assert!(*v < 10);
                        0
                    }
                    Tree::Node(kids) => 1 + kids.iter().map(Tree::depth).max().unwrap_or(0),
                }
            }
        }
        let leaf = (0u8..10).prop_map(Tree::Leaf);
        let s = leaf.prop_recursive(3, 16, 4, |inner| {
            crate::collection::vec(inner, 0..4).prop_map(Tree::Node)
        });
        let mut r = rng();
        for _ in 0..50 {
            assert!(s.generate(&mut r).depth() <= 3);
        }
    }

    #[test]
    fn tuples_generate_componentwise() {
        let mut r = rng();
        let (a, b, c) = (0u8..2, 10u8..12, Just(7u8)).generate(&mut r);
        assert!(a < 2);
        assert!((10..12).contains(&b));
        assert_eq!(c, 7);
    }
}
