//! Regex-subset string generation.
//!
//! Proptest treats string literals as regexes. The stand-in supports
//! the subset this workspace's tests use — sequences of literal
//! characters and character classes (`[a-z0-9]`, ranges and singletons,
//! no negation) with `{m}`/`{m,n}` repetition — and rejects anything
//! else loudly so an unsupported pattern can't silently generate wrong
//! data.

use crate::test_runner::TestRng;

#[derive(Debug, Clone)]
enum Atom {
    Literal(char),
    /// Flattened class members.
    Class(Vec<char>),
}

#[derive(Debug, Clone)]
struct Piece {
    atom: Atom,
    min: u32,
    max: u32,
}

#[derive(Debug, Clone)]
pub struct StringPattern {
    pieces: Vec<Piece>,
}

impl StringPattern {
    pub fn parse(pattern: &str) -> Self {
        let mut chars = pattern.chars().peekable();
        let mut pieces = Vec::new();
        while let Some(c) = chars.next() {
            let atom = match c {
                '[' => {
                    let mut members = Vec::new();
                    let mut prev: Option<char> = None;
                    loop {
                        match chars.next() {
                            Some(']') => break,
                            Some('-') if prev.is_some() && chars.peek() != Some(&']') => {
                                let lo = prev.take().expect("range needs a start");
                                let hi = chars.next().expect("unterminated class range");
                                assert!(lo <= hi, "descending class range in {pattern:?}");
                                // `lo` was already pushed as a singleton.
                                members.pop();
                                members.extend((lo..=hi).filter(|c| c.is_ascii()));
                            }
                            Some(m) => {
                                assert!(
                                    m != '^',
                                    "negated classes unsupported in pattern {pattern:?}"
                                );
                                members.push(m);
                                prev = Some(m);
                            }
                            None => panic!("unterminated class in pattern {pattern:?}"),
                        }
                    }
                    assert!(!members.is_empty(), "empty class in pattern {pattern:?}");
                    Atom::Class(members)
                }
                '\\' => Atom::Literal(chars.next().expect("dangling escape")),
                '{' | '}' | '*' | '+' | '?' | '(' | ')' | '|' | '.' | '^' | '$' => panic!(
                    "regex feature {c:?} unsupported by the proptest stand-in (pattern {pattern:?}); \
                     extend vendor/proptest/src/string.rs if a test needs it"
                ),
                c => Atom::Literal(c),
            };
            let (min, max) = if chars.peek() == Some(&'{') {
                chars.next();
                let mut spec = String::new();
                loop {
                    match chars.next() {
                        Some('}') => break,
                        Some(c) => spec.push(c),
                        None => panic!("unterminated repetition in pattern {pattern:?}"),
                    }
                }
                match spec.split_once(',') {
                    Some((m, "")) => {
                        let m: u32 = m.trim().parse().expect("bad repetition bound");
                        (m, m + 8)
                    }
                    Some((m, n)) => (
                        m.trim().parse().expect("bad repetition bound"),
                        n.trim().parse().expect("bad repetition bound"),
                    ),
                    None => {
                        let m: u32 = spec.trim().parse().expect("bad repetition bound");
                        (m, m)
                    }
                }
            } else {
                (1, 1)
            };
            assert!(min <= max, "descending repetition in pattern {pattern:?}");
            pieces.push(Piece { atom, min, max });
        }
        Self { pieces }
    }

    pub fn generate(&self, rng: &mut TestRng) -> String {
        let mut out = String::new();
        for piece in &self.pieces {
            let n = piece.min + rng.below((piece.max - piece.min + 1) as u64) as u32;
            for _ in 0..n {
                match &piece.atom {
                    Atom::Literal(c) => out.push(*c),
                    Atom::Class(members) => {
                        out.push(members[rng.below(members.len() as u64) as usize]);
                    }
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn class_with_repetition() {
        let p = StringPattern::parse("[a-z0-9]{0,24}");
        let mut rng = TestRng::new(3);
        for _ in 0..200 {
            let s = p.generate(&mut rng);
            assert!(s.len() <= 24);
            assert!(s
                .chars()
                .all(|c| c.is_ascii_lowercase() || c.is_ascii_digit()));
        }
    }

    #[test]
    fn literals_and_exact_counts() {
        let p = StringPattern::parse("ab[01]{3}");
        let mut rng = TestRng::new(4);
        let s = p.generate(&mut rng);
        assert_eq!(s.len(), 5);
        assert!(s.starts_with("ab"));
        assert!(s[2..].chars().all(|c| c == '0' || c == '1'));
    }

    #[test]
    #[should_panic(expected = "unsupported")]
    fn unsupported_features_panic() {
        StringPattern::parse("a|b");
    }
}
