//! Config and RNG for the vendored proptest.

/// Per-suite configuration. Only the knobs this workspace touches.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    pub cases: u32,
}

/// Default number of cases when a suite does not ask for a specific
/// count. The real proptest defaults to 256; the stand-in defaults
/// lower so the three proptest suites stay interactive in CI. Raise or
/// lower per run with `PROPTEST_CASES`.
pub const DEFAULT_CASES: u32 = 64;

impl Default for ProptestConfig {
    fn default() -> Self {
        Self {
            cases: DEFAULT_CASES,
        }
    }
}

impl ProptestConfig {
    pub fn with_cases(cases: u32) -> Self {
        Self { cases }
    }

    /// The case count actually run: `PROPTEST_CASES`, when set, *caps*
    /// the configured count, so CI can bound even suites that ask for
    /// many cases without ballooning the expensive suites that ask for
    /// few.
    pub fn resolved_cases(&self) -> u32 {
        match std::env::var("PROPTEST_CASES")
            .ok()
            .and_then(|v| v.parse::<u32>().ok())
        {
            Some(env_cap) => self.cases.min(env_cap.max(1)),
            None => self.cases,
        }
    }
}

/// Deterministic splitmix64 stream, seeded per test function and case
/// index so every case draws independent values and reruns reproduce
/// failures exactly. `PROPTEST_SEED` perturbs all streams at once.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    pub fn new(seed: u64) -> Self {
        Self {
            state: seed ^ 0x9E37_79B9_7F4A_7C15,
        }
    }

    pub fn for_case(test_name: &str, case: u32) -> Self {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in test_name.bytes() {
            h = (h ^ b as u64).wrapping_mul(0x0000_0100_0000_01B3);
        }
        let env_seed = std::env::var("PROPTEST_SEED")
            .ok()
            .and_then(|v| v.parse::<u64>().ok())
            .unwrap_or(0);
        let mut rng = Self::new(h ^ env_seed ^ ((case as u64) << 32));
        // Warm up so nearby seeds decorrelate.
        rng.next_u64();
        rng
    }

    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform in `[0, 1)`.
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform in `[0, n)` without modulo bias; `n` must be > 0.
    pub fn below(&mut self, n: u64) -> u64 {
        debug_assert!(n > 0);
        let zone = u64::MAX - (u64::MAX - n + 1) % n;
        loop {
            let v = self.next_u64();
            if v <= zone {
                return v % n;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reproducible_per_case() {
        let mut a = TestRng::for_case("t", 3);
        let mut b = TestRng::for_case("t", 3);
        assert_eq!(a.next_u64(), b.next_u64());
        let mut c = TestRng::for_case("t", 4);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn below_is_in_range() {
        let mut r = TestRng::new(1);
        for _ in 0..1000 {
            assert!(r.below(7) < 7);
        }
    }

    #[test]
    fn config_env_caps() {
        // No env set in unit tests: resolved == configured.
        assert_eq!(ProptestConfig::with_cases(10).resolved_cases(), 10);
        assert_eq!(ProptestConfig::default().cases, DEFAULT_CASES);
    }
}
