//! Offline stand-in for `bytes`.
//!
//! [`Bytes`] is an immutable byte buffer whose clones share one
//! allocation — the property the object store relies on so that
//! `get()` does not copy checkpoint payloads. Like the real crate,
//! [`Bytes::slice`] produces a zero-copy view into the same allocation
//! (sized-only checkpoint placeholders are slices of one shared zero
//! buffer).

use std::fmt;
use std::ops::{Bound, Deref, RangeBounds};
use std::sync::Arc;

#[derive(Clone, Default)]
pub struct Bytes {
    buf: Arc<[u8]>,
    start: usize,
    end: usize,
}

impl Bytes {
    pub fn new() -> Self {
        Self::default()
    }

    pub fn copy_from_slice(data: &[u8]) -> Self {
        Self::from_arc(Arc::from(data))
    }

    fn from_arc(buf: Arc<[u8]>) -> Self {
        let end = buf.len();
        Self { buf, start: 0, end }
    }

    pub fn len(&self) -> usize {
        self.end - self.start
    }

    pub fn is_empty(&self) -> bool {
        self.start == self.end
    }

    pub fn to_vec(&self) -> Vec<u8> {
        self[..].to_vec()
    }

    /// A view of `range` (indices relative to this view) sharing the
    /// same allocation — no bytes are copied.
    pub fn slice(&self, range: impl RangeBounds<usize>) -> Self {
        let start = match range.start_bound() {
            Bound::Included(&n) => n,
            Bound::Excluded(&n) => n + 1,
            Bound::Unbounded => 0,
        };
        let end = match range.end_bound() {
            Bound::Included(&n) => n + 1,
            Bound::Excluded(&n) => n,
            Bound::Unbounded => self.len(),
        };
        assert!(
            start <= end && end <= self.len(),
            "slice {start}..{end} out of bounds for {} bytes",
            self.len()
        );
        Self {
            buf: Arc::clone(&self.buf),
            start: self.start + start,
            end: self.start + end,
        }
    }
}

impl Deref for Bytes {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        &self.buf[self.start..self.end]
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        self
    }
}

// Equality/ordering/hashing follow the visible byte content (two
// equal-content views of different allocations are equal), matching
// the real crate.
impl PartialEq for Bytes {
    fn eq(&self, other: &Self) -> bool {
        self[..] == other[..]
    }
}

impl Eq for Bytes {}

impl PartialOrd for Bytes {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Bytes {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self[..].cmp(&other[..])
    }
}

impl std::hash::Hash for Bytes {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        self[..].hash(state);
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Self {
        Self::from_arc(Arc::from(v))
    }
}

impl From<&[u8]> for Bytes {
    fn from(v: &[u8]) -> Self {
        Self::copy_from_slice(v)
    }
}

impl From<&str> for Bytes {
    fn from(v: &str) -> Self {
        Self::copy_from_slice(v.as_bytes())
    }
}

impl From<Bytes> for Vec<u8> {
    fn from(b: Bytes) -> Self {
        b.to_vec()
    }
}

impl fmt::Debug for Bytes {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Bytes({} bytes)", self.len())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clones_share_storage() {
        let a = Bytes::from(vec![1, 2, 3]);
        let b = a.clone();
        assert_eq!(&a[..], &b[..]);
        assert_eq!(a.len(), 3);
        assert_eq!(b.to_vec(), vec![1, 2, 3]);
    }

    #[test]
    fn slices_are_zero_copy_views() {
        let a = Bytes::from(vec![0, 1, 2, 3, 4, 5]);
        let s = a.slice(1..4);
        assert_eq!(&s[..], &[1, 2, 3]);
        assert_eq!(s.len(), 3);
        // Nested slicing is relative to the view.
        let t = s.slice(1..);
        assert_eq!(&t[..], &[2, 3]);
        assert_eq!(a.slice(..0).len(), 0);
        assert_eq!(a.slice(..), a);
    }

    #[test]
    fn equality_follows_content_not_allocation() {
        let a = Bytes::from(vec![7, 8]);
        let b = Bytes::from(vec![0, 7, 8]).slice(1..);
        assert_eq!(a, b);
        assert_eq!(a.cmp(&b), std::cmp::Ordering::Equal);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn out_of_range_slice_panics() {
        let a = Bytes::from(vec![1]);
        let _ = a.slice(0..2);
    }
}
