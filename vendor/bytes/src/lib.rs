//! Offline stand-in for `bytes`.
//!
//! [`Bytes`] is an immutable byte buffer whose clones share one
//! allocation — the property the object store relies on so that
//! `get()` does not copy checkpoint payloads.

use std::fmt;
use std::ops::Deref;
use std::sync::Arc;

#[derive(Clone, Default, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Bytes(Arc<[u8]>);

impl Bytes {
    pub fn new() -> Self {
        Self::default()
    }

    pub fn copy_from_slice(data: &[u8]) -> Self {
        Self(Arc::from(data))
    }

    pub fn len(&self) -> usize {
        self.0.len()
    }

    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }

    pub fn to_vec(&self) -> Vec<u8> {
        self.0.to_vec()
    }
}

impl Deref for Bytes {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        &self.0
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        &self.0
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Self {
        Self(Arc::from(v))
    }
}

impl From<&[u8]> for Bytes {
    fn from(v: &[u8]) -> Self {
        Self::copy_from_slice(v)
    }
}

impl From<&str> for Bytes {
    fn from(v: &str) -> Self {
        Self::copy_from_slice(v.as_bytes())
    }
}

impl From<Bytes> for Vec<u8> {
    fn from(b: Bytes) -> Self {
        b.to_vec()
    }
}

impl fmt::Debug for Bytes {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Bytes({} bytes)", self.len())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clones_share_storage() {
        let a = Bytes::from(vec![1, 2, 3]);
        let b = a.clone();
        assert_eq!(&a[..], &b[..]);
        assert_eq!(a.len(), 3);
        assert_eq!(b.to_vec(), vec![1, 2, 3]);
    }
}
