//! Offline stand-in for `crossbeam`.
//!
//! Implements the `crossbeam::channel` subset the threaded runtime
//! uses: an unbounded MPMC channel with cloneable senders *and*
//! receivers (std's mpsc receiver is single-consumer, so it cannot back
//! this API), `try_recv`, and `recv_timeout` with disconnect detection.

pub mod channel {
    use std::collections::VecDeque;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::{Arc, Condvar, Mutex};
    use std::time::{Duration, Instant};

    struct Shared<T> {
        queue: Mutex<VecDeque<T>>,
        ready: Condvar,
        senders: AtomicUsize,
        receivers: AtomicUsize,
    }

    pub struct Sender<T>(Arc<Shared<T>>);

    pub struct Receiver<T>(Arc<Shared<T>>);

    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct SendError<T>(pub T);

    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct RecvError;

    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum TryRecvError {
        Empty,
        Disconnected,
    }

    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum RecvTimeoutError {
        Timeout,
        Disconnected,
    }

    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        let shared = Arc::new(Shared {
            queue: Mutex::new(VecDeque::new()),
            ready: Condvar::new(),
            senders: AtomicUsize::new(1),
            receivers: AtomicUsize::new(1),
        });
        (Sender(shared.clone()), Receiver(shared))
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            self.0.senders.fetch_add(1, Ordering::Relaxed);
            Sender(self.0.clone())
        }
    }

    impl<T> Drop for Sender<T> {
        fn drop(&mut self) {
            if self.0.senders.fetch_sub(1, Ordering::AcqRel) == 1 {
                // Last sender gone: wake blocked receivers so they can
                // observe the disconnect.
                self.0.ready.notify_all();
            }
        }
    }

    impl<T> Sender<T> {
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            if self.0.receivers.load(Ordering::Acquire) == 0 {
                return Err(SendError(value));
            }
            self.0
                .queue
                .lock()
                .unwrap_or_else(|e| e.into_inner())
                .push_back(value);
            self.0.ready.notify_one();
            Ok(())
        }
    }

    impl<T> Clone for Receiver<T> {
        fn clone(&self) -> Self {
            self.0.receivers.fetch_add(1, Ordering::Relaxed);
            Receiver(self.0.clone())
        }
    }

    impl<T> Drop for Receiver<T> {
        fn drop(&mut self) {
            self.0.receivers.fetch_sub(1, Ordering::AcqRel);
        }
    }

    impl<T> Receiver<T> {
        fn disconnected(&self) -> bool {
            self.0.senders.load(Ordering::Acquire) == 0
        }

        pub fn is_empty(&self) -> bool {
            self.0
                .queue
                .lock()
                .unwrap_or_else(|e| e.into_inner())
                .is_empty()
        }

        pub fn len(&self) -> usize {
            self.0.queue.lock().unwrap_or_else(|e| e.into_inner()).len()
        }

        pub fn try_recv(&self) -> Result<T, TryRecvError> {
            let mut q = self.0.queue.lock().unwrap_or_else(|e| e.into_inner());
            match q.pop_front() {
                Some(v) => Ok(v),
                None if self.disconnected() => Err(TryRecvError::Disconnected),
                None => Err(TryRecvError::Empty),
            }
        }

        pub fn recv(&self) -> Result<T, RecvError> {
            let mut q = self.0.queue.lock().unwrap_or_else(|e| e.into_inner());
            loop {
                if let Some(v) = q.pop_front() {
                    return Ok(v);
                }
                if self.disconnected() {
                    return Err(RecvError);
                }
                q = self.0.ready.wait(q).unwrap_or_else(|e| e.into_inner());
            }
        }

        pub fn recv_timeout(&self, timeout: Duration) -> Result<T, RecvTimeoutError> {
            let deadline = Instant::now() + timeout;
            let mut q = self.0.queue.lock().unwrap_or_else(|e| e.into_inner());
            loop {
                if let Some(v) = q.pop_front() {
                    return Ok(v);
                }
                if self.disconnected() {
                    return Err(RecvTimeoutError::Disconnected);
                }
                let now = Instant::now();
                if now >= deadline {
                    return Err(RecvTimeoutError::Timeout);
                }
                let (guard, res) = self
                    .0
                    .ready
                    .wait_timeout(q, deadline - now)
                    .unwrap_or_else(|e| e.into_inner());
                q = guard;
                if res.timed_out() && q.is_empty() {
                    if self.disconnected() {
                        return Err(RecvTimeoutError::Disconnected);
                    }
                    return Err(RecvTimeoutError::Timeout);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::channel::*;
    use std::time::Duration;

    #[test]
    fn mpmc_fan_in_fan_out() {
        let (tx, rx) = unbounded::<u32>();
        let rx2 = rx.clone();
        let txs: Vec<_> = (0..4).map(|_| tx.clone()).collect();
        drop(tx);
        for (i, t) in txs.iter().enumerate() {
            t.send(i as u32).unwrap();
        }
        let mut got = vec![rx.recv().unwrap(), rx2.recv().unwrap()];
        got.push(rx.try_recv().unwrap());
        got.push(rx2.try_recv().unwrap());
        got.sort();
        assert_eq!(got, vec![0, 1, 2, 3]);
    }

    #[test]
    fn disconnect_observed() {
        let (tx, rx) = unbounded::<u8>();
        tx.send(1).unwrap();
        drop(tx);
        assert_eq!(rx.try_recv(), Ok(1));
        assert_eq!(rx.try_recv(), Err(TryRecvError::Disconnected));
        assert_eq!(
            rx.recv_timeout(Duration::from_millis(10)),
            Err(RecvTimeoutError::Disconnected)
        );
    }

    #[test]
    fn timeout_when_empty() {
        let (_tx, rx) = unbounded::<u8>();
        assert_eq!(
            rx.recv_timeout(Duration::from_millis(20)),
            Err(RecvTimeoutError::Timeout)
        );
    }

    #[test]
    fn cross_thread_delivery() {
        let (tx, rx) = unbounded::<u64>();
        let h = std::thread::spawn(move || {
            for i in 0..100 {
                tx.send(i).unwrap();
            }
        });
        let mut sum = 0;
        for _ in 0..100 {
            sum += rx.recv_timeout(Duration::from_secs(5)).unwrap();
        }
        h.join().unwrap();
        assert_eq!(sum, 4950);
    }
}
