//! Offline stand-in for `serde_derive`.
//!
//! A hand-rolled derive (no `syn`/`quote` — crates.io is unreachable in
//! this build environment) covering exactly the shapes this workspace
//! derives on: plain structs with named fields, tuple structs, and unit
//! structs, with optional generic parameters whose bounds are written
//! on the struct declaration (e.g. `Experiment<R: Serialize>`).
//! `#[derive(Serialize)]` emits field-by-field JSON writes against the
//! vendored `serde::ser::JsonWriter`; `#[derive(Deserialize)]` emits a
//! marker impl only, since nothing in the workspace deserializes
//! through serde.

use proc_macro::{Delimiter, TokenStream, TokenTree};

#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let s = parse_struct(input);
    let body = match &s.kind {
        Kind::Named(fields) => {
            let mut b = String::from("w.begin_object();");
            for f in fields {
                b.push_str(&format!("w.field(\"{f}\", &self.{f});"));
            }
            b.push_str("w.end_object();");
            b
        }
        Kind::Tuple(1) => "::serde::Serialize::write_json(&self.0, w);".to_string(),
        Kind::Tuple(n) => {
            let mut b = String::from("w.begin_array();");
            for i in 0..*n {
                b.push_str(&format!(
                    "w.element(); ::serde::Serialize::write_json(&self.{i}, w);"
                ));
            }
            b.push_str("w.end_array();");
            b
        }
        Kind::Unit => "w.raw(\"null\");".to_string(),
    };
    format!(
        "impl{ig} ::serde::Serialize for {name}{tg} {{ \
             fn write_json(&self, w: &mut ::serde::ser::JsonWriter) {{ {body} }} \
         }}",
        ig = s.impl_generics,
        name = s.name,
        tg = s.type_generics,
    )
    .parse()
    .expect("serde_derive: generated impl must parse")
}

#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let s = parse_struct(input);
    format!(
        "impl{ig} ::serde::Deserialize for {name}{tg} {{}}",
        ig = s.impl_generics,
        name = s.name,
        tg = s.type_generics,
    )
    .parse()
    .expect("serde_derive: generated impl must parse")
}

enum Kind {
    Named(Vec<String>),
    Tuple(usize),
    Unit,
}

struct Parsed {
    name: String,
    /// Generics verbatim from the declaration, bounds included.
    impl_generics: String,
    /// Parameter names only, for the type position.
    type_generics: String,
    kind: Kind,
}

/// Net change in angle-bracket depth contributed by a punct token.
fn angle_delta(p: &proc_macro::Punct) -> i32 {
    match p.as_char() {
        '<' => 1,
        '>' => -1,
        _ => 0,
    }
}

fn parse_struct(input: TokenStream) -> Parsed {
    let mut iter = input.into_iter().peekable();
    // Skip attributes (`#[...]`) and visibility up to the `struct` keyword.
    loop {
        match iter.next() {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                iter.next(); // the [...] group
            }
            Some(TokenTree::Ident(id)) if id.to_string() == "struct" => break,
            Some(_) => continue,
            None => panic!("serde_derive: only structs are supported"),
        }
    }
    let name = match iter.next() {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => panic!("serde_derive: expected struct name, got {other:?}"),
    };

    // Generics, if any.
    let mut impl_generics = String::new();
    let mut type_generics = String::new();
    if let Some(TokenTree::Punct(p)) = iter.peek() {
        if p.as_char() == '<' {
            iter.next();
            let mut depth = 1i32;
            let mut toks: Vec<TokenTree> = Vec::new();
            for tok in iter.by_ref() {
                if let TokenTree::Punct(p) = &tok {
                    depth += angle_delta(p);
                    if depth == 0 {
                        break;
                    }
                }
                toks.push(tok);
            }
            let inner: String = toks.iter().map(|t| format!("{t} ")).collect();
            impl_generics = format!("<{inner}>");
            // Extract parameter names: the first token of each
            // top-level comma-separated entry (with a leading `'` for
            // lifetimes).
            let mut params = Vec::new();
            let mut depth = 0i32;
            let mut at_param_start = true;
            let mut pending_lifetime = false;
            for tok in &toks {
                match tok {
                    TokenTree::Punct(p) => {
                        depth += angle_delta(p);
                        if p.as_char() == ',' && depth == 0 {
                            at_param_start = true;
                        } else if p.as_char() == '\'' && at_param_start {
                            pending_lifetime = true;
                        }
                    }
                    TokenTree::Ident(id) if at_param_start => {
                        let id = id.to_string();
                        if id == "const" {
                            continue;
                        }
                        params.push(if pending_lifetime {
                            format!("'{id}")
                        } else {
                            id
                        });
                        at_param_start = false;
                        pending_lifetime = false;
                    }
                    _ => {}
                }
            }
            type_generics = format!("<{}>", params.join(", "));
        }
    }

    // Body: braces (named), parens (tuple), or a bare `;` (unit). A
    // `where` clause would sit in between, but no derived struct in
    // this workspace uses one.
    let kind = loop {
        match iter.next() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                break Kind::Named(named_fields(g.stream()));
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                break Kind::Tuple(count_tuple_fields(g.stream()));
            }
            Some(TokenTree::Punct(p)) if p.as_char() == ';' => break Kind::Unit,
            Some(TokenTree::Ident(id)) if id.to_string() == "where" => {
                panic!(
                    "serde_derive: where clauses are not supported; put bounds on the parameters"
                )
            }
            Some(_) => continue,
            None => break Kind::Unit,
        }
    };

    Parsed {
        name,
        impl_generics,
        type_generics,
        kind,
    }
}

fn named_fields(stream: TokenStream) -> Vec<String> {
    let mut fields = Vec::new();
    let mut iter = stream.into_iter().peekable();
    loop {
        // Skip attributes and visibility.
        let name = loop {
            match iter.next() {
                Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                    iter.next();
                }
                Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                    if let Some(TokenTree::Group(_)) = iter.peek() {
                        iter.next(); // pub(crate) etc.
                    }
                }
                Some(TokenTree::Ident(id)) => break Some(id.to_string()),
                Some(other) => panic!("serde_derive: unexpected token in fields: {other}"),
                None => break None,
            }
        };
        let Some(name) = name else { break };
        fields.push(name);
        match iter.next() {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => {}
            other => panic!("serde_derive: expected `:` after field name, got {other:?}"),
        }
        // Skip the type up to the next top-level comma.
        let mut depth = 0i32;
        for tok in iter.by_ref() {
            if let TokenTree::Punct(p) = &tok {
                depth += angle_delta(p);
                if p.as_char() == ',' && depth == 0 {
                    break;
                }
            }
        }
    }
    fields
}

fn count_tuple_fields(stream: TokenStream) -> usize {
    let mut count = 0usize;
    let mut depth = 0i32;
    let mut saw_tokens = false;
    for tok in stream {
        saw_tokens = true;
        if let TokenTree::Punct(p) = &tok {
            depth += angle_delta(p);
            if p.as_char() == ',' && depth == 0 {
                count += 1;
            }
        }
    }
    // `(A, B)` has one top-level comma but two fields; a trailing comma
    // would overcount, but none of the derived structs here use one.
    if saw_tokens {
        count + 1
    } else {
        0
    }
}
