//! Offline stand-in for `parking_lot`.
//!
//! Wraps `std::sync` primitives behind parking_lot's poison-free API:
//! `lock()`/`read()`/`write()` return guards directly. A poisoned std
//! lock only arises after a panic while holding the guard, at which
//! point the process is already failing; recovering the inner guard
//! keeps behaviour identical to parking_lot's.

use std::sync::{self, PoisonError};

#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized>(sync::Mutex<T>);

pub type MutexGuard<'a, T> = sync::MutexGuard<'a, T>;

impl<T> Mutex<T> {
    pub fn new(value: T) -> Self {
        Self(sync::Mutex::new(value))
    }

    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(PoisonError::into_inner)
    }

    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized>(sync::RwLock<T>);

pub type RwLockReadGuard<'a, T> = sync::RwLockReadGuard<'a, T>;
pub type RwLockWriteGuard<'a, T> = sync::RwLockWriteGuard<'a, T>;

impl<T> RwLock<T> {
    pub fn new(value: T) -> Self {
        Self(sync::RwLock::new(value))
    }

    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> RwLock<T> {
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(PoisonError::into_inner)
    }

    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(PoisonError::into_inner)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_round_trip() {
        let m = Mutex::new(1u32);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn rwlock_round_trip() {
        let l = RwLock::new(vec![1, 2]);
        l.write().push(3);
        assert_eq!(l.read().len(), 3);
    }
}
