//! Failure and recovery on NexMark Q3 (the incremental join): inject a
//! worker failure mid-run and watch each protocol detect, restore,
//! replay, and catch up. Prints the per-second p50 latency timeline and
//! the restart/recovery breakdown — a miniature of the paper's Figs. 9
//! and 11.
//!
//! ```text
//! cargo run --release --example nexmark_failover
//! ```

use checkmate::core::ProtocolKind;
use checkmate::dataflow::WorkerId;
use checkmate::engine::{Engine, EngineConfig, FailureSpec};
use checkmate::nexmark::Query;

const SEC: u64 = 1_000_000_000;

fn main() {
    let parallelism = 4;
    println!("NexMark Q3, {parallelism} workers, failure at t=8s of 20 virtual seconds\n");
    for protocol in [
        ProtocolKind::Coordinated,
        ProtocolKind::Uncoordinated,
        ProtocolKind::CommunicationInduced,
    ] {
        let workload = Query::Q3.workload(parallelism, 7, None);
        let cfg = EngineConfig {
            parallelism,
            protocol,
            total_rate: 2_800.0,
            checkpoint_interval: 2 * SEC,
            duration: 20 * SEC,
            warmup: 4 * SEC,
            failure: Some(FailureSpec {
                at: 8 * SEC,
                worker: WorkerId(0),
            }),
            ..EngineConfig::default()
        };
        let r = Engine::new(&workload, cfg).run();
        println!("--- {protocol} ---");
        print!("p50 by second (ms): ");
        for s in &r.latency_series {
            if s.second >= 4 {
                print!("{}:{:.0} ", s.second, s.p50_ns as f64 / 1e6);
            }
        }
        println!();
        println!(
            "restart {:>7.1} ms   recovery {}   invalid checkpoints {}/{}   duplicates to sink {}",
            r.restart_time_ns
                .map(|t| t as f64 / 1e6)
                .unwrap_or(f64::NAN),
            r.recovery_time_ns
                .map(|t| format!("{:7.1} ms", t as f64 / 1e6))
                .unwrap_or_else(|| "   (not within run)".into()),
            r.checkpoints_invalid,
            r.checkpoints_total,
            r.output_duplicates,
        );
        println!();
    }
    println!("COOR restarts fastest (no replay); UNC/CIC must fetch and re-deliver");
    println!("logged in-flight messages — the shape of the paper's Fig. 11.");
}
