//! The paper's headline finding: under hot-item skew the coordinated
//! protocol collapses (markers stuck behind stragglers, alignment blocks
//! healthy channels) while uncoordinated checkpointing barely notices.
//!
//! Runs NexMark Q12 at a fixed rate with increasing hot-item ratios and
//! prints p50 latency and average checkpointing time per protocol — a
//! miniature of the paper's Fig. 12.
//!
//! ```text
//! cargo run --release --example skew_showdown
//! ```

use checkmate::core::ProtocolKind;
use checkmate::engine::{Engine, EngineConfig};
use checkmate::nexmark::{Query, Skew};

const SEC: u64 = 1_000_000_000;

fn main() {
    let parallelism = 4;
    let rate = 1_150.0 * parallelism as f64;
    println!("NexMark Q12, {parallelism} workers, {rate:.0} rec/s — hot items hash to 2 keys\n");
    println!(
        "{:>8}  {:>10}  {:>12}  {:>14}",
        "hot %", "protocol", "p50 (ms)", "avg ct (ms)"
    );
    for hot in [0.0, 0.10, 0.20, 0.30] {
        for protocol in [ProtocolKind::Coordinated, ProtocolKind::Uncoordinated] {
            let skew = if hot > 0.0 { Skew::hot(hot) } else { None };
            let workload = Query::Q12.workload(parallelism, 11, skew);
            let cfg = EngineConfig {
                parallelism,
                protocol,
                total_rate: rate,
                checkpoint_interval: 2 * SEC,
                duration: 15 * SEC,
                warmup: 5 * SEC,
                ..EngineConfig::default()
            };
            let r = Engine::new(&workload, cfg).run();
            println!(
                "{:>8.0}  {:>10}  {:>12.1}  {:>14.2}",
                hot * 100.0,
                protocol.to_string(),
                r.p50_ns as f64 / 1e6,
                r.avg_checkpoint_time_ns as f64 / 1e6,
            );
        }
        println!();
    }
    println!("Rather than blindly employing coordinated checkpointing, research should");
    println!("focus on the very promising uncoordinated approach. — the paper's conclusion");
}
