//! The tiered checkpoint store on a checkpoint-heavy NexMark cell:
//! run Q12 with a short checkpoint interval against (a) the flat
//! in-memory store and (b) the hot → warm → cold ladder with an
//! aggressive compaction policy, then compare what each keeps resident
//! in its fastest tier. The tiered run must reproduce the flat run's
//! sink digest exactly — compaction moves bytes, never output — while
//! holding a fraction of the flat store's live bytes hot.
//!
//! ```text
//! cargo run --release --example tiered_storage
//! ```
//!
//! The numbers in `BENCH_PR7.json` come from this binary.

use checkmate::core::{IncrementalPolicy, ProtocolKind};
use checkmate::engine::{Engine, EngineConfig, TierConfig};
use checkmate::nexmark::Query;
use checkmate::storage::TierPolicy;

const SEC: u64 = 1_000_000_000;
const MB: f64 = 1024.0 * 1024.0;

fn main() {
    let parallelism = 4;
    println!("NexMark Q12, {parallelism} workers, checkpoint every 250 ms for 60 virtual seconds");
    println!("flat local-ssd store vs hot/warm/cold ladder (seal at 64 KiB, retain 2 layers)\n");
    for protocol in [ProtocolKind::Coordinated, ProtocolKind::Uncoordinated] {
        let cfg = EngineConfig {
            parallelism,
            protocol,
            total_rate: 4_000.0,
            checkpoint_interval: SEC / 4,
            duration: 60 * SEC,
            warmup: 2 * SEC,
            incremental: Some(IncrementalPolicy::default()),
            ..EngineConfig::default()
        };

        let workload = Query::Q12.workload(parallelism, 7, None);
        let flat = Engine::new(&workload, cfg.clone()).run();

        let mut tiered_cfg = cfg.clone();
        let mut tc = TierConfig::standard(SEC / 4);
        tc.policy = TierPolicy {
            hot_capacity_bytes: 64 << 10,
            warm_retain_layers: 2,
            vacuum_dead_fraction: 0.3,
        };
        tiered_cfg.storage = tc.tiers.hot;
        tiered_cfg.tiering = Some(tc);
        let tiered = Engine::new(&workload, tiered_cfg).run();

        assert_eq!(
            flat.sink_digest, tiered.sink_digest,
            "{protocol}: tiering changed the output"
        );
        let t = tiered.tier.expect("tiered run reports tier stats");
        let flat_live = flat.store_bytes_live as f64 / MB;
        let hot = t.hot.bytes as f64 / MB;
        println!("--- {protocol} ---");
        println!(
            "flat store live {flat_live:8.2} MB   (all of it in the fast tier, {} objects)",
            flat.store_objects_live
        );
        println!(
            "tiered hot      {hot:8.2} MB   warm {:.2} MB   cold {:.2} MB   (peak hot {:.2} MB)",
            t.warm.bytes as f64 / MB,
            t.cold.bytes as f64 / MB,
            t.hot_peak_bytes as f64 / MB,
        );
        println!(
            "hot-tier bytes: {:.1}% of flat   ({} seals, {} demotions, {} vacuums, dedup saved {:.2} MB)",
            100.0 * hot / flat_live.max(f64::MIN_POSITIVE),
            t.seals,
            t.demotions,
            t.vacuums,
            t.dedup_saved_bytes as f64 / MB,
        );
        println!("sink digest identical: {:016x}\n", flat.sink_digest.acc);
    }
    println!("Compaction relocates checkpoint bytes down the ladder without touching");
    println!("the output; recovery reads pay each tier's own price (see README).");
}
