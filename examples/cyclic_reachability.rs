//! The cyclic reachability query (paper Fig. 6): streaming links and
//! source nodes, with derived reach records feeding back into the join.
//!
//! Uncoordinated and communication-induced checkpointing handle the
//! cycle; the aligned coordinated protocol deadlocks waiting for a marker
//! that must pass through itself — this example shows both outcomes.
//!
//! ```text
//! cargo run --release --example cyclic_reachability
//! ```

use checkmate::core::ProtocolKind;
use checkmate::cyclic::reachability;
use checkmate::dataflow::WorkerId;
use checkmate::engine::report::Outcome;
use checkmate::engine::{Engine, EngineConfig, FailureSpec};

const SEC: u64 = 1_000_000_000;

fn main() {
    let parallelism = 3;
    println!("Reachability over a 1M-node universe, {parallelism} workers, failure at t=9s\n");
    for protocol in [
        ProtocolKind::Uncoordinated,
        ProtocolKind::CommunicationInduced,
        ProtocolKind::Coordinated,
    ] {
        let workload = reachability(parallelism, 13, 1_000_000);
        let cfg = EngineConfig {
            parallelism,
            protocol,
            total_rate: 180.0 * parallelism as f64,
            checkpoint_interval: 2 * SEC,
            duration: 14 * SEC,
            warmup: 4 * SEC,
            failure: (protocol != ProtocolKind::Coordinated).then_some(FailureSpec {
                at: 9 * SEC,
                worker: WorkerId(1),
            }),
            ..EngineConfig::default()
        };
        let r = Engine::new(&workload, cfg).run();
        match r.outcome {
            Outcome::CoordinatedDeadlock { at } => {
                println!(
                    "{protocol:8}  DEADLOCK at t={:.1}s — alignment waits on the feedback channel;",
                    at as f64 / 1e9
                );
                println!("          the marker it needs originates from itself (paper §VII-B).");
            }
            _ => {
                println!(
                    "{protocol:8}  {:5} reach records   ckpts {:3} (forced {:2}, invalid {:.1}%)   restart {:6.1} ms",
                    r.sink_records,
                    r.checkpoints_total,
                    r.checkpoints_forced,
                    r.invalid_pct(),
                    r.restart_time_ns.map(|t| t as f64 / 1e6).unwrap_or(f64::NAN),
                );
            }
        }
    }
    println!("\nNo domino effect for UNC on this sparse graph — the paper's empirical");
    println!("surprise. Re-run with a dense universe (3k nodes) and watch it appear.");
}
