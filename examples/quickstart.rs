//! Quickstart: run a NexMark query under each checkpointing protocol on
//! the deterministic virtual-time testbed, then take the same protocol
//! stack for a spin on the threaded wall-clock engine.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use checkmate::core::ProtocolKind;
use checkmate::engine::{Engine, EngineConfig};
use checkmate::nexmark::Query;
use checkmate::runtime::{run_live, LiveConfig};
use std::time::Duration;

fn main() {
    println!("== virtual-time engine: NexMark Q12, 4 workers, 10 virtual seconds ==\n");
    for protocol in ProtocolKind::ALL_EVALUATED {
        let workload = Query::Q12.workload(4, 7, None);
        let cfg = EngineConfig {
            parallelism: 4,
            protocol,
            total_rate: 3_200.0,
            checkpoint_interval: 2_000_000_000,
            duration: 10_000_000_000,
            warmup: 3_000_000_000,
            ..EngineConfig::default()
        };
        let r = Engine::new(&workload, cfg).run();
        println!(
            "{:8}  p50 {:6.1} ms   p99 {:6.1} ms   {:6} records   {:3} checkpoints   overhead {:.2}x",
            protocol.to_string(),
            r.p50_ns as f64 / 1e6,
            r.p99_ns as f64 / 1e6,
            r.sink_records,
            r.checkpoints_total,
            r.overhead_ratio(),
        );
    }

    println!("\n== threaded wall-clock engine: keyed counting, kill worker 1 mid-run ==\n");
    let graph = {
        use checkmate::dataflow::ops::{DigestSinkOp, KeyedCounterOp, PassThroughOp};
        use checkmate::dataflow::{EdgeKind, GraphBuilder};
        use std::sync::Arc;
        let mut b = GraphBuilder::new();
        let src = b.source("src", 0, 0, Arc::new(|_| Box::new(PassThroughOp)));
        let cnt = b.op("count", 0, Arc::new(|_| Box::new(KeyedCounterOp::new())));
        let sink = b.sink("sink", 0, Arc::new(|_| Box::new(DigestSinkOp::new())));
        b.connect(src, cnt, EdgeKind::Shuffle);
        b.connect(cnt, sink, EdgeKind::Forward);
        b.build().expect("valid graph")
    };
    let stream: std::sync::Arc<dyn checkmate::wal::EventStream> =
        std::sync::Arc::new(checkmate::nexmark::BidStream::new(3, 7, None));
    for (label, kill) in [("failure-free", None), ("kill worker 1", Some(1))] {
        let r = run_live(
            &graph,
            vec![std::sync::Arc::clone(&stream)],
            LiveConfig {
                parallelism: 3,
                protocol: ProtocolKind::Uncoordinated,
                rate_per_partition: 2_000.0,
                records_per_partition: 1_000,
                checkpoint_interval: Duration::from_millis(100),
                kill_worker: kill,
                timeout: Duration::from_secs(30),
                ..LiveConfig::default()
            },
        );
        println!(
            "{label:13}  digest count {:5}  acc {:#018x}  recovered: {}  ({:.2?} wall)",
            r.sink_digest.count, r.sink_digest.acc, r.recovered, r.elapsed
        );
    }
    println!("\nIdentical digests above = exactly-once processing across the failure.");
}
